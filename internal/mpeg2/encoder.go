package mpeg2

import (
	"fmt"

	"hdvideobench/internal/bitstream"
	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/dct"
	"hdvideobench/internal/entropy"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/interp"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/motion"
	"hdvideobench/internal/quant"
	"hdvideobench/internal/swar"
)

// Encoder is the MPEG-2-class encoder (the paper's FFmpeg-mpeg2 role).
type Encoder struct {
	cfg codec.Config
	gop codec.GOPScheduler

	prevRef, lastRef *frame.Frame // reconstructed references, coding order

	bw   *bitstream.Writer
	pred predBuf

	// Per-row encoder state.
	dcPred  [3]int32
	fwdPred motion.MV   // half-pel forward MV predictor within the row
	bwdPred motion.MV   // half-pel backward MV predictor within the row
	mvRow   []motion.MV // full-pel MVs of the current row (predictor source)
	mvAbove []motion.MV // full-pel MVs of the row above

	inCount int // display frames accepted
	frames  int // frames coded
}

// NewEncoder returns an MPEG-2 encoder for cfg.
func NewEncoder(cfg codec.Config) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("mpeg2: %w", err)
	}
	return &Encoder{
		cfg:     cfg,
		gop:     codec.GOPScheduler{BFrames: cfg.BFrames, IntraPeriod: cfg.IntraPeriod},
		bw:      bitstream.NewWriter(cfg.Width * cfg.Height / 4),
		mvRow:   make([]motion.MV, cfg.MBCols()),
		mvAbove: make([]motion.MV, cfg.MBCols()),
	}, nil
}

// Header implements codec.Encoder.
func (e *Encoder) Header() container.Header { return header(e.cfg, 0) }

// Encode implements codec.Encoder.
func (e *Encoder) Encode(f *frame.Frame) ([]container.Packet, error) {
	if f.Width != e.cfg.Width || f.Height != e.cfg.Height {
		return nil, fmt.Errorf("mpeg2: frame is %dx%d, config is %dx%d",
			f.Width, f.Height, e.cfg.Width, e.cfg.Height)
	}
	f.PTS = e.inCount // display index = arrival order
	e.inCount++
	var pkts []container.Packet
	for _, entry := range e.gop.Push(f) {
		pkts = append(pkts, e.encodeFrame(entry.Frame, entry.Type))
	}
	return pkts, nil
}

// Flush implements codec.Encoder.
func (e *Encoder) Flush() ([]container.Packet, error) {
	var pkts []container.Packet
	for _, entry := range e.gop.Flush() {
		pkts = append(pkts, e.encodeFrame(entry.Frame, entry.Type))
	}
	return pkts, nil
}

func (e *Encoder) encodeFrame(src *frame.Frame, ftype container.FrameType) container.Packet {
	recon := frame.NewPadded(e.cfg.Width, e.cfg.Height, codec.RefPad)
	recon.PTS = src.PTS

	e.bw.Reset()
	e.bw.WriteBits(uint64(e.cfg.Q), 5)

	for i := range e.mvAbove {
		e.mvAbove[i] = motion.MV{}
	}
	for mby := 0; mby < e.cfg.MBRows(); mby++ {
		e.resetRowState()
		for mbx := 0; mbx < e.cfg.MBCols(); mbx++ {
			switch ftype {
			case container.FrameI:
				e.encodeIntraMB(src, recon, mbx, mby)
			case container.FrameP:
				e.encodePMB(src, recon, mbx, mby)
			default:
				e.encodeBMB(src, recon, mbx, mby)
			}
		}
		e.mvRow, e.mvAbove = e.mvAbove, e.mvRow
	}

	recon.ExtendBorders()
	switch ftype {
	case container.FrameI:
		// Closed GOP: an I frame invalidates earlier references, so a
		// chunk encoder starting here matches the serial stream exactly.
		e.prevRef = nil
		e.lastRef = recon
	case container.FrameP:
		e.prevRef = e.lastRef
		e.lastRef = recon
	}
	e.frames++

	payload := append([]byte(nil), e.bw.Bytes()...)
	return container.Packet{Type: ftype, DisplayIndex: src.PTS, Payload: payload}
}

func (e *Encoder) resetRowState() {
	e.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
	e.fwdPred = motion.MV{}
	e.bwdPred = motion.MV{}
}

// encodeIntraMB codes all six blocks of a macroblock in intra mode.
func (e *Encoder) encodeIntraMB(src, recon *frame.Frame, mbx, mby int) {
	px, py := mbx*16, mby*16
	q := int32(e.cfg.Q)
	// Luma blocks Y0..Y3.
	for i := 0; i < 4; i++ {
		off := src.YOrigin + (py+8*(i/2))*src.YStride + px + 8*(i%2)
		roff := recon.YOrigin + (py+8*(i/2))*recon.YStride + px + 8*(i%2)
		e.intraBlock(src.Y, off, src.YStride, recon.Y, roff, recon.YStride, q, 0)
	}
	cx, cy := px/2, py/2
	coff := src.COrigin + cy*src.CStride + cx
	croff := recon.COrigin + cy*recon.CStride + cx
	e.intraBlock(src.Cb, coff, src.CStride, recon.Cb, croff, recon.CStride, q, 1)
	e.intraBlock(src.Cr, coff, src.CStride, recon.Cr, croff, recon.CStride, q, 2)
	e.mvRow[mbx] = motion.MV{}
}

// intraBlock transforms, quantizes, writes and reconstructs one 8×8 intra
// block. comp selects the DC predictor (0=Y, 1=Cb, 2=Cr).
func (e *Encoder) intraBlock(plane []byte, off, stride int, rec []byte, roff, rstride int, q int32, comp int) {
	var blk [64]int32
	codec.LoadBlock8(&blk, plane, off, stride)
	dct.Forward8(&blk)
	quant.Mpeg2QuantIntra(&blk, q)

	entropy.WriteSE(e.bw, blk[0]-e.dcPred[comp])
	e.dcPred[comp] = blk[0]
	writeRunLevels(e.bw, &blk, 1, eob8)

	quant.Mpeg2DequantIntra(&blk, q)
	dct.Inverse8(&blk)
	codec.Store8Clip(rec, roff, rstride, &blk)
}

// interBlock codes one residual 8×8 block; returns whether it has
// coefficients and reconstructs into rec (pred + residual).
func (e *Encoder) interBlock(cur []byte, co, cstride int, pred []byte, po, pstride int, rec []byte, ro, rstride int, q int32, write bool) bool {
	var blk [64]int32
	codec.Residual8(&blk, cur, co, cstride, pred, po, pstride)
	dct.Forward8(&blk)
	nz := quant.Mpeg2QuantInter(&blk, q)
	if nz == 0 {
		codec.Copy8(rec, ro, rstride, pred, po, pstride)
		return false
	}
	if write {
		writeRunLevels(e.bw, &blk, 0, eob64)
	}
	quant.Mpeg2DequantInter(&blk, q)
	dct.Inverse8(&blk)
	codec.Add8Clip(rec, ro, rstride, pred, po, pstride, &blk)
	return true
}

// writeRunLevels codes the zigzag run/level pairs from scan position start,
// terminated by the eob marker.
func writeRunLevels(bw *bitstream.Writer, blk *[64]int32, start int, eob uint32) {
	run := uint32(0)
	for i := start; i < 64; i++ {
		v := blk[dct.Zigzag8[i]]
		if v == 0 {
			run++
			continue
		}
		entropy.WriteUE(bw, run)
		entropy.WriteSE(bw, v)
		run = 0
	}
	entropy.WriteUE(bw, eob)
}

// sadMB computes SAD between the current 16×16 luma block and a prediction
// buffer using the configured kernel set.
func (e *Encoder) sadMB(src *frame.Frame, px, py int, pred []byte) int {
	off := src.YOrigin + py*src.YStride + px
	if e.cfg.Kernels == kernel.SWAR {
		return swar.SADBlock(src.Y[off:], src.YStride, pred, 16, 16, 16)
	}
	return codec.SADBlockBytes(src.Y, off, src.YStride, pred, 0, 16, 16, 16)
}

// intraCostMB estimates the intra coding cost of a macroblock as the mean
// absolute deviation from the block mean (plus a fixed mode bias).
func intraCostMB(src *frame.Frame, px, py int) int {
	off := src.YOrigin + py*src.YStride + px
	sum := 0
	for r := 0; r < 16; r++ {
		sum += swar.SumRow(src.Y[off+r*src.YStride:], 16)
	}
	mean := byte(sum / 256)
	cost := 0
	for r := 0; r < 16; r++ {
		row := src.Y[off+r*src.YStride:]
		for c := 0; c < 16; c++ {
			d := int(row[c]) - int(mean)
			if d < 0 {
				d = -d
			}
			cost += d
		}
	}
	return cost + 512 // intra mode bias
}

// setupEstimator points the shared estimator at the current luma block.
func (e *Encoder) setupEstimator(est *motion.Estimator, src, ref *frame.Frame, px, py int, predFull motion.MV) {
	est.Kern = e.cfg.Kernels
	est.Cur = src.Y
	est.CurOff = src.YOrigin + py*src.YStride + px
	est.CurStride = src.YStride
	est.Ref = ref.Y
	est.RefOrigin = ref.YOrigin
	est.RefStride = ref.YStride
	est.PosX, est.PosY = px, py
	est.W, est.H = 16, 16
	est.Lambda = lambdaFor(e.cfg.Q)
	est.Pred = predFull
	est.Window(e.cfg.SearchRange, e.cfg.Width, e.cfg.Height, codec.RefPad)
}

// searchLuma runs EPZS + half-pel refinement against ref and returns the
// best half-pel MV, its SAD, and fills pred with the winning prediction.
func (e *Encoder) searchLuma(src, ref *frame.Frame, px, py, mbx int, predHalf motion.MV, pred []byte) (motion.MV, int) {
	var est motion.Estimator
	predFull := motion.MV{X: predHalf.X >> 1, Y: predHalf.Y >> 1}
	e.setupEstimator(&est, src, ref, px, py, predFull)

	preds := make([]motion.MV, 0, 3)
	if mbx > 0 {
		preds = append(preds, e.mvRow[mbx-1])
	}
	preds = append(preds, e.mvAbove[mbx])
	if mbx+1 < len(e.mvAbove) {
		preds = append(preds, e.mvAbove[mbx+1])
	}
	res := est.EPZS(preds, 2*e.cfg.Q*16)

	// Half-pel refinement around the full-pel winner.
	bestMV := motion.MV{X: res.MV.X * 2, Y: res.MV.Y * 2}
	interp.HalfPel(pred, 16,
		ref.Y[ref.YOrigin+(py+int(res.MV.Y))*ref.YStride+px+int(res.MV.X):],
		ref.YStride, 16, 16, 0, 0, e.cfg.Kernels)
	bestSAD := e.sadMB(src, px, py, pred)
	var cand [256]byte
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			hx := int(res.MV.X)*2 + dx
			hy := int(res.MV.Y)*2 + dy
			ix, fx := splitHalf(hx)
			iy, fy := splitHalf(hy)
			so := ref.YOrigin + (py+iy)*ref.YStride + px + ix
			interp.HalfPel(cand[:], 16, ref.Y[so:], ref.YStride, 16, 16, fx, fy, e.cfg.Kernels)
			if sad := e.sadMB(src, px, py, cand[:]); sad < bestSAD {
				bestSAD = sad
				bestMV = motion.MV{X: int16(hx), Y: int16(hy)}
				copy(pred, cand[:])
			}
		}
	}
	return bestMV, bestSAD
}

// predictChroma fills the chroma prediction for a half-pel luma MV.
func predictChroma(ref *frame.Frame, px, py int, mv motion.MV, cb, cr []byte, k kernel.Set) {
	cvx := chromaMV(int(mv.X))
	cvy := chromaMV(int(mv.Y))
	ix, fx := splitHalf(cvx)
	iy, fy := splitHalf(cvy)
	cx, cy := px/2, py/2
	so := ref.COrigin + (cy+iy)*ref.CStride + cx + ix
	interp.HalfPel(cb, 8, ref.Cb[so:], ref.CStride, 8, 8, fx, fy, k)
	interp.HalfPel(cr, 8, ref.Cr[so:], ref.CStride, 8, 8, fx, fy, k)
}

// codeResidualMB writes CBP and residual blocks for an inter MB, using the
// prediction in e.pred (y/cb/cr), and reconstructs into recon.
// Returns the CBP.
func (e *Encoder) codeResidualMB(src, recon *frame.Frame, px, py int) int {
	q := int32(e.cfg.Q)
	// First pass: find CBP.
	var blks [6][64]int32
	cbp := 0
	for i := 0; i < 4; i++ {
		co := src.YOrigin + (py+8*(i/2))*src.YStride + px + 8*(i%2)
		po := 8*(i/2)*16 + 8*(i%2)
		codec.Residual8(&blks[i], src.Y, co, src.YStride, e.pred.y[:], po, 16)
		dct.Forward8(&blks[i])
		if quant.Mpeg2QuantInter(&blks[i], q) > 0 {
			cbp |= 1 << (5 - i)
		}
	}
	cx, cy := px/2, py/2
	co := src.COrigin + cy*src.CStride + cx
	codec.Residual8(&blks[4], src.Cb, co, src.CStride, e.pred.cb[:], 0, 8)
	dct.Forward8(&blks[4])
	if quant.Mpeg2QuantInter(&blks[4], q) > 0 {
		cbp |= 1 << 1
	}
	codec.Residual8(&blks[5], src.Cr, co, src.CStride, e.pred.cr[:], 0, 8)
	dct.Forward8(&blks[5])
	if quant.Mpeg2QuantInter(&blks[5], q) > 0 {
		cbp |= 1
	}

	e.bw.WriteBits(uint64(cbp), 6)
	for i := 0; i < 6; i++ {
		if cbp&(1<<(5-i)) != 0 {
			writeRunLevels(e.bw, &blks[i], 0, eob64)
		}
	}

	// Reconstruction.
	for i := 0; i < 4; i++ {
		ro := recon.YOrigin + (py+8*(i/2))*recon.YStride + px + 8*(i%2)
		po := 8*(i/2)*16 + 8*(i%2)
		if cbp&(1<<(5-i)) != 0 {
			quant.Mpeg2DequantInter(&blks[i], q)
			dct.Inverse8(&blks[i])
			codec.Add8Clip(recon.Y, ro, recon.YStride, e.pred.y[:], po, 16, &blks[i])
		} else {
			codec.Copy8(recon.Y, ro, recon.YStride, e.pred.y[:], po, 16)
		}
	}
	cro := recon.COrigin + cy*recon.CStride + cx
	if cbp&2 != 0 {
		quant.Mpeg2DequantInter(&blks[4], q)
		dct.Inverse8(&blks[4])
		codec.Add8Clip(recon.Cb, cro, recon.CStride, e.pred.cb[:], 0, 8, &blks[4])
	} else {
		codec.Copy8(recon.Cb, cro, recon.CStride, e.pred.cb[:], 0, 8)
	}
	if cbp&1 != 0 {
		quant.Mpeg2DequantInter(&blks[5], q)
		dct.Inverse8(&blks[5])
		codec.Add8Clip(recon.Cr, cro, recon.CStride, e.pred.cr[:], 0, 8, &blks[5])
	} else {
		codec.Copy8(recon.Cr, cro, recon.CStride, e.pred.cr[:], 0, 8)
	}
	return cbp
}

// residualIsZero checks cheaply whether the quantized residual of the MB
// would be all zero for the current prediction (used for skip decisions).
func (e *Encoder) residualWouldBeZero(src *frame.Frame, px, py int) bool {
	q := int32(e.cfg.Q)
	var blk [64]int32
	for i := 0; i < 4; i++ {
		co := src.YOrigin + (py+8*(i/2))*src.YStride + px + 8*(i%2)
		po := 8*(i/2)*16 + 8*(i%2)
		codec.Residual8(&blk, src.Y, co, src.YStride, e.pred.y[:], po, 16)
		dct.Forward8(&blk)
		if quant.Mpeg2QuantInter(&blk, q) > 0 {
			return false
		}
	}
	cx, cy := px/2, py/2
	co := src.COrigin + cy*src.CStride + cx
	codec.Residual8(&blk, src.Cb, co, src.CStride, e.pred.cb[:], 0, 8)
	dct.Forward8(&blk)
	if quant.Mpeg2QuantInter(&blk, q) > 0 {
		return false
	}
	codec.Residual8(&blk, src.Cr, co, src.CStride, e.pred.cr[:], 0, 8)
	dct.Forward8(&blk)
	return quant.Mpeg2QuantInter(&blk, q) == 0
}

// copyPredToRecon writes the current prediction unchanged into recon
// (skip macroblocks).
func (e *Encoder) copyPredToRecon(recon *frame.Frame, px, py int) {
	for r := 0; r < 16; r++ {
		ro := recon.YOrigin + (py+r)*recon.YStride + px
		copy(recon.Y[ro:ro+16], e.pred.y[r*16:r*16+16])
	}
	cx, cy := px/2, py/2
	for r := 0; r < 8; r++ {
		ro := recon.COrigin + (cy+r)*recon.CStride + cx
		copy(recon.Cb[ro:ro+8], e.pred.cb[r*8:r*8+8])
		copy(recon.Cr[ro:ro+8], e.pred.cr[r*8:r*8+8])
	}
}

// encodePMB codes one macroblock of a P frame.
func (e *Encoder) encodePMB(src, recon *frame.Frame, mbx, mby int) {
	px, py := mbx*16, mby*16
	ref := e.lastRef

	mv, interSAD := e.searchLuma(src, ref, px, py, mbx, e.fwdPred, e.pred.y[:])
	intraCost := intraCostMB(src, px, py)

	if intraCost < interSAD {
		entropy.WriteUE(e.bw, pIntra)
		e.encodeIntraBlocks(src, recon, mbx, mby)
		e.fwdPred = motion.MV{}
		e.mvRow[mbx] = motion.MV{}
		return
	}

	predictChroma(ref, px, py, mv, e.pred.cb[:], e.pred.cr[:], e.cfg.Kernels)

	// Skip: zero MV and empty residual.
	if mv == (motion.MV{}) && e.residualWouldBeZero(src, px, py) {
		entropy.WriteUE(e.bw, pSkip)
		e.copyPredToRecon(recon, px, py)
		e.fwdPred = motion.MV{}
		e.mvRow[mbx] = motion.MV{}
		e.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		return
	}

	entropy.WriteUE(e.bw, pInter)
	entropy.WriteSE(e.bw, int32(mv.X)-int32(e.fwdPred.X))
	entropy.WriteSE(e.bw, int32(mv.Y)-int32(e.fwdPred.Y))
	e.fwdPred = mv
	e.mvRow[mbx] = motion.MV{X: mv.X >> 1, Y: mv.Y >> 1}
	e.codeResidualMB(src, recon, px, py)
	e.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
}

// encodeIntraBlocks writes the six intra blocks (shared by I-frame MBs and
// intra MBs inside P/B frames).
func (e *Encoder) encodeIntraBlocks(src, recon *frame.Frame, mbx, mby int) {
	e.encodeIntraMB(src, recon, mbx, mby)
}

// encodeBMB codes one macroblock of a B frame.
func (e *Encoder) encodeBMB(src, recon *frame.Frame, mbx, mby int) {
	px, py := mbx*16, mby*16
	fwdRef, bwdRef := e.prevRef, e.lastRef

	fwdMV, fwdSAD := e.searchLuma(src, fwdRef, px, py, mbx, e.fwdPred, e.pred.y[:])
	// Keep the forward prediction; search backward into yAlt.
	bwdMV, bwdSAD := e.searchLumaAlt(src, bwdRef, px, py, mbx, e.bwdPred)

	// Bi-directional hypothesis: average of both predictions.
	var bi [256]byte
	copy(bi[:], e.pred.y[:])
	interp.Avg(bi[:], 16, e.pred.yAlt[:], 16, 16, 16, e.cfg.Kernels)
	biSAD := e.sadMB(src, px, py, bi[:]) + 2*lambdaFor(e.cfg.Q) // extra MV cost

	intraCost := intraCostMB(src, px, py)

	mode := bFwd
	best := fwdSAD
	if bwdSAD < best {
		mode, best = bBwd, bwdSAD
	}
	if biSAD < best {
		mode, best = bBi, biSAD
	}
	if intraCost < best {
		entropy.WriteUE(e.bw, bIntra)
		e.encodeIntraBlocks(src, recon, mbx, mby)
		e.fwdPred = motion.MV{}
		e.bwdPred = motion.MV{}
		e.mvRow[mbx] = motion.MV{}
		return
	}

	// Assemble final prediction into e.pred.
	switch mode {
	case bFwd:
		predictChroma(fwdRef, px, py, fwdMV, e.pred.cb[:], e.pred.cr[:], e.cfg.Kernels)
	case bBwd:
		copy(e.pred.y[:], e.pred.yAlt[:])
		predictChroma(bwdRef, px, py, bwdMV, e.pred.cb[:], e.pred.cr[:], e.cfg.Kernels)
	case bBi:
		copy(e.pred.y[:], bi[:])
		predictChroma(fwdRef, px, py, fwdMV, e.pred.cb[:], e.pred.cr[:], e.cfg.Kernels)
		predictChroma(bwdRef, px, py, bwdMV, e.pred.cbAlt[:], e.pred.crAlt[:], e.cfg.Kernels)
		interp.Avg(e.pred.cb[:], 8, e.pred.cbAlt[:], 8, 8, 8, e.cfg.Kernels)
		interp.Avg(e.pred.cr[:], 8, e.pred.crAlt[:], 8, 8, 8, e.cfg.Kernels)
	}

	// Skip: forward mode with MV equal to the predictor and no residual.
	if mode == bFwd && fwdMV == e.fwdPred && e.residualWouldBeZero(src, px, py) {
		entropy.WriteUE(e.bw, bSkip)
		e.copyPredToRecon(recon, px, py)
		e.mvRow[mbx] = motion.MV{X: fwdMV.X >> 1, Y: fwdMV.Y >> 1}
		e.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		return
	}

	entropy.WriteUE(e.bw, uint32(mode))
	if mode == bFwd || mode == bBi {
		entropy.WriteSE(e.bw, int32(fwdMV.X)-int32(e.fwdPred.X))
		entropy.WriteSE(e.bw, int32(fwdMV.Y)-int32(e.fwdPred.Y))
		e.fwdPred = fwdMV
	}
	if mode == bBwd || mode == bBi {
		entropy.WriteSE(e.bw, int32(bwdMV.X)-int32(e.bwdPred.X))
		entropy.WriteSE(e.bw, int32(bwdMV.Y)-int32(e.bwdPred.Y))
		e.bwdPred = bwdMV
	}
	switch mode {
	case bFwd, bBi:
		e.mvRow[mbx] = motion.MV{X: fwdMV.X >> 1, Y: fwdMV.Y >> 1}
	default:
		e.mvRow[mbx] = motion.MV{X: bwdMV.X >> 1, Y: bwdMV.Y >> 1}
	}
	e.codeResidualMB(src, recon, px, py)
	e.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
}

// searchLumaAlt is searchLuma writing its prediction into pred.yAlt.
func (e *Encoder) searchLumaAlt(src, ref *frame.Frame, px, py, mbx int, predHalf motion.MV) (motion.MV, int) {
	return e.searchLuma(src, ref, px, py, mbx, predHalf, e.pred.yAlt[:])
}
