package mpeg2

import (
	"fmt"

	"hdvideobench/internal/bitstream"
	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/dct"
	"hdvideobench/internal/entropy"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/interp"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/motion"
	"hdvideobench/internal/quant"
)

// Decoder is the MPEG-2-class decoder (the paper's libmpeg2 role).
//
// Each frame payload carries a slice table (see internal/codec); every
// slice is decoded independently — own bitstream reader, own predictors,
// disjoint macroblock rows of the shared reconstruction — so the slices
// of one frame run concurrently on the SliceRunner.
type Decoder struct {
	hdr    container.Header
	kern   kernel.Set
	runner codec.SliceRunner

	prevRef, lastRef *frame.Frame
	reorder          codec.DisplayReorderer

	slices []*sliceDec // per-slice decoders, reused across frames
	errs   []error     // per-slice decode results, reused across frames
}

// sliceDec carries the per-slice decoder state.
type sliceDec struct {
	d  *Decoder
	br bitstream.Reader

	pred predBuf

	dcPred  [3]int32
	fwdPred motion.MV
	bwdPred motion.MV
}

// NewDecoder returns a decoder for the stream described by hdr. The kernel
// set selects the scalar or SWAR motion-compensation path.
func NewDecoder(hdr container.Header, kern kernel.Set) (*Decoder, error) {
	if hdr.Codec != container.CodecMPEG2 {
		return nil, fmt.Errorf("mpeg2: stream codec is %v", hdr.Codec)
	}
	if err := validateSize(hdr); err != nil {
		return nil, err
	}
	return &Decoder{hdr: hdr, kern: kern}, nil
}

// SetSliceRunner implements codec.SliceScheduler: per-frame slice jobs
// run on r (nil restores the serial default). Decoded pixels do not
// depend on the runner.
func (d *Decoder) SetSliceRunner(r codec.SliceRunner) { d.runner = r }

// Decode implements codec.Decoder.
func (d *Decoder) Decode(p container.Packet) ([]*frame.Frame, error) {
	recon, err := d.decodeFrame(p)
	if err != nil {
		return nil, err
	}
	return d.reorder.Add(recon), nil
}

// Flush implements codec.Decoder.
func (d *Decoder) Flush() []*frame.Frame { return d.reorder.Flush() }

// grow ensures d.slices and d.errs cover n slices.
func (d *Decoder) grow(n int) {
	for len(d.slices) < n {
		d.slices = append(d.slices, &sliceDec{d: d})
	}
	if cap(d.errs) < n {
		d.errs = make([]error, n)
	}
	d.errs = d.errs[:n]
}

func (d *Decoder) decodeFrame(p container.Packet) (*frame.Frame, error) {
	if len(p.Payload) < 1 {
		return nil, fmt.Errorf("mpeg2: empty packet")
	}
	q := int32(p.Payload[0])
	if q < 1 || q > 31 {
		return nil, fmt.Errorf("mpeg2: invalid quantizer %d", q)
	}
	if p.Type == container.FrameP && d.lastRef == nil {
		return nil, fmt.Errorf("mpeg2: P frame before any reference")
	}
	if p.Type == container.FrameB && (d.lastRef == nil || d.prevRef == nil) {
		return nil, fmt.Errorf("mpeg2: B frame without two references")
	}
	switch p.Type {
	case container.FrameI, container.FrameP, container.FrameB:
	default:
		return nil, fmt.Errorf("mpeg2: unknown frame type %c", p.Type)
	}

	spans, off, err := codec.ParseSliceTable(p.Payload[1:], d.hdr.Height/16)
	if err != nil {
		return nil, fmt.Errorf("mpeg2: %w", err)
	}
	body := p.Payload[1+off:]
	d.grow(len(spans))

	recon := frame.NewPadded(d.hdr.Width, d.hdr.Height, codec.RefPad)
	recon.PTS = p.DisplayIndex

	sliceQ := d.hdr.Flags&container.FlagSliceQ != 0
	codec.RunSlices(d.runner, len(spans), func(i int) {
		lo := 0
		for _, s := range spans[:i] {
			lo += s.Size
		}
		bits := body[lo : lo+spans[i].Size]
		sq := q
		if sliceQ {
			// FlagSliceQ streams open every slice body with its own
			// quantizer byte, overriding the frame q for this slice.
			if len(bits) < 1 {
				d.errs[i] = fmt.Errorf("empty slice body")
				return
			}
			sq = int32(bits[0])
			if sq < 1 || sq > 31 {
				d.errs[i] = fmt.Errorf("invalid slice quantizer %d", sq)
				return
			}
			bits = bits[1:]
		}
		d.errs[i] = d.slices[i].decode(bits, recon, p.Type, spans[i], sq)
	})
	for i, err := range d.errs {
		if err != nil {
			return nil, fmt.Errorf("mpeg2: slice %d (rows %d-%d): %w",
				i, spans[i].Row, spans[i].Row+spans[i].Rows-1, err)
		}
	}

	recon.ExtendBorders()
	switch p.Type {
	case container.FrameI:
		// Closed GOP: mirror the encoder's reference reset at I frames.
		d.prevRef = nil
		d.lastRef = recon
	case container.FrameP:
		d.prevRef = d.lastRef
		d.lastRef = recon
	}
	return recon, nil
}

// decode parses one slice bitstream into its macroblock rows.
func (s *sliceDec) decode(buf []byte, recon *frame.Frame, ftype container.FrameType, span codec.SliceSpan, q int32) error {
	s.br.Reset(buf)
	mbCols := s.d.hdr.Width / 16
	for mby := span.Row; mby < span.Row+span.Rows; mby++ {
		s.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		s.fwdPred = motion.MV{}
		s.bwdPred = motion.MV{}
		for mbx := 0; mbx < mbCols; mbx++ {
			var err error
			switch ftype {
			case container.FrameI:
				err = s.decodeIntraMB(recon, mbx, mby, q)
			case container.FrameP:
				err = s.decodePMB(recon, mbx, mby, q)
			default:
				err = s.decodeBMB(recon, mbx, mby, q)
			}
			if err != nil {
				return err
			}
		}
	}
	if s.br.Err() != nil {
		return fmt.Errorf("bitstream overrun: %w", s.br.Err())
	}
	return nil
}

func (s *sliceDec) decodeIntraMB(recon *frame.Frame, mbx, mby int, q int32) error {
	px, py := mbx*16, mby*16
	for i := 0; i < 4; i++ {
		roff := recon.YOrigin + (py+8*(i/2))*recon.YStride + px + 8*(i%2)
		if err := s.intraBlock(recon.Y, roff, recon.YStride, q, 0); err != nil {
			return err
		}
	}
	cx, cy := px/2, py/2
	croff := recon.COrigin + cy*recon.CStride + cx
	if err := s.intraBlock(recon.Cb, croff, recon.CStride, q, 1); err != nil {
		return err
	}
	return s.intraBlock(recon.Cr, croff, recon.CStride, q, 2)
}

func (s *sliceDec) intraBlock(rec []byte, roff, rstride int, q int32, comp int) error {
	var blk [64]int32
	dc := s.dcPred[comp] + entropy.ReadSE(&s.br)
	s.dcPred[comp] = dc
	blk[0] = dc
	if err := readRunLevels(&s.br, &blk, 1, eob8); err != nil {
		return err
	}
	quant.Mpeg2DequantIntra(&blk, q)
	dct.Inverse8(&blk)
	codec.Store8Clip(rec, roff, rstride, &blk)
	return nil
}

// readRunLevels parses run/level pairs until the EOB marker.
func readRunLevels(br *bitstream.Reader, blk *[64]int32, start int, eob uint32) error {
	pos := start
	for {
		run := entropy.ReadUE(br)
		if run == eob {
			return nil
		}
		if br.Err() != nil {
			return fmt.Errorf("truncated block: %w", br.Err())
		}
		pos += int(run)
		if pos > 63 {
			return fmt.Errorf("run overflows block (pos %d)", pos)
		}
		level := entropy.ReadSE(br)
		if level == 0 {
			return fmt.Errorf("zero level")
		}
		blk[dct.Zigzag8[pos]] = level
		pos++
		if pos > 64 {
			return fmt.Errorf("block overflow")
		}
	}
}

// mcLuma fills the decoder's luma prediction buffer for a half-pel MV.
func (s *sliceDec) mcLuma(ref *frame.Frame, px, py int, mv motion.MV, dst []byte) {
	ix, fx := splitHalf(int(mv.X))
	iy, fy := splitHalf(int(mv.Y))
	ix = clampMVToWindow(ix, px, s.d.hdr.Width, 16)
	iy = clampMVToWindow(iy, py, s.d.hdr.Height, 16)
	so := ref.YOrigin + (py+iy)*ref.YStride + px + ix
	interp.HalfPel(dst, 16, ref.Y[so:], ref.YStride, 16, 16, fx, fy, s.d.kern)
}

// mcChroma fills the chroma prediction buffers.
func (s *sliceDec) mcChroma(ref *frame.Frame, px, py int, mv motion.MV, cb, cr []byte) {
	cvx := chromaMV(int(mv.X))
	cvy := chromaMV(int(mv.Y))
	ix, fx := splitHalf(cvx)
	iy, fy := splitHalf(cvy)
	cx, cy := px/2, py/2
	ix = clampMVToWindow(ix, cx, s.d.hdr.Width/2, 8)
	iy = clampMVToWindow(iy, cy, s.d.hdr.Height/2, 8)
	so := ref.COrigin + (cy+iy)*ref.CStride + cx + ix
	interp.HalfPel(cb, 8, ref.Cb[so:], ref.CStride, 8, 8, fx, fy, s.d.kern)
	interp.HalfPel(cr, 8, ref.Cr[so:], ref.CStride, 8, 8, fx, fy, s.d.kern)
}

// decodeResidualMB parses CBP and residual blocks, reconstructing
// pred + residual into recon.
func (s *sliceDec) decodeResidualMB(recon *frame.Frame, px, py int, q int32) error {
	cbp := int(s.br.ReadBits(6))
	var blk [64]int32
	for i := 0; i < 4; i++ {
		ro := recon.YOrigin + (py+8*(i/2))*recon.YStride + px + 8*(i%2)
		po := 8*(i/2)*16 + 8*(i%2)
		if cbp&(1<<(5-i)) != 0 {
			blk = [64]int32{}
			if err := readRunLevels(&s.br, &blk, 0, eob64); err != nil {
				return err
			}
			quant.Mpeg2DequantInter(&blk, q)
			dct.Inverse8(&blk)
			codec.Add8Clip(recon.Y, ro, recon.YStride, s.pred.y[:], po, 16, &blk, s.d.kern)
		} else {
			codec.Copy8(recon.Y, ro, recon.YStride, s.pred.y[:], po, 16)
		}
	}
	cx, cy := px/2, py/2
	cro := recon.COrigin + cy*recon.CStride + cx
	if cbp&2 != 0 {
		blk = [64]int32{}
		if err := readRunLevels(&s.br, &blk, 0, eob64); err != nil {
			return err
		}
		quant.Mpeg2DequantInter(&blk, q)
		dct.Inverse8(&blk)
		codec.Add8Clip(recon.Cb, cro, recon.CStride, s.pred.cb[:], 0, 8, &blk, s.d.kern)
	} else {
		codec.Copy8(recon.Cb, cro, recon.CStride, s.pred.cb[:], 0, 8)
	}
	if cbp&1 != 0 {
		blk = [64]int32{}
		if err := readRunLevels(&s.br, &blk, 0, eob64); err != nil {
			return err
		}
		quant.Mpeg2DequantInter(&blk, q)
		dct.Inverse8(&blk)
		codec.Add8Clip(recon.Cr, cro, recon.CStride, s.pred.cr[:], 0, 8, &blk, s.d.kern)
	} else {
		codec.Copy8(recon.Cr, cro, recon.CStride, s.pred.cr[:], 0, 8)
	}
	return nil
}

// copyPredToRecon mirrors the encoder's skip reconstruction.
func (s *sliceDec) copyPredToRecon(recon *frame.Frame, px, py int) {
	for r := 0; r < 16; r++ {
		ro := recon.YOrigin + (py+r)*recon.YStride + px
		copy(recon.Y[ro:ro+16], s.pred.y[r*16:r*16+16])
	}
	cx, cy := px/2, py/2
	for r := 0; r < 8; r++ {
		ro := recon.COrigin + (cy+r)*recon.CStride + cx
		copy(recon.Cb[ro:ro+8], s.pred.cb[r*8:r*8+8])
		copy(recon.Cr[ro:ro+8], s.pred.cr[r*8:r*8+8])
	}
}

func (s *sliceDec) decodePMB(recon *frame.Frame, mbx, mby int, q int32) error {
	px, py := mbx*16, mby*16
	mode := entropy.ReadUE(&s.br)
	switch mode {
	case pIntra:
		if err := s.decodeIntraMB(recon, mbx, mby, q); err != nil {
			return err
		}
		s.fwdPred = motion.MV{}
		return nil
	case pSkip:
		s.mcLuma(s.d.lastRef, px, py, motion.MV{}, s.pred.y[:])
		s.mcChroma(s.d.lastRef, px, py, motion.MV{}, s.pred.cb[:], s.pred.cr[:])
		s.copyPredToRecon(recon, px, py)
		s.fwdPred = motion.MV{}
		s.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		return nil
	case pInter:
		mv := motion.MV{
			X: int16(int32(s.fwdPred.X) + entropy.ReadSE(&s.br)),
			Y: int16(int32(s.fwdPred.Y) + entropy.ReadSE(&s.br)),
		}
		s.fwdPred = mv
		s.mcLuma(s.d.lastRef, px, py, mv, s.pred.y[:])
		s.mcChroma(s.d.lastRef, px, py, mv, s.pred.cb[:], s.pred.cr[:])
		if err := s.decodeResidualMB(recon, px, py, q); err != nil {
			return err
		}
		s.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		return nil
	}
	return fmt.Errorf("invalid P macroblock mode %d", mode)
}

func (s *sliceDec) decodeBMB(recon *frame.Frame, mbx, mby int, q int32) error {
	px, py := mbx*16, mby*16
	mode := entropy.ReadUE(&s.br)
	switch mode {
	case bIntra:
		if err := s.decodeIntraMB(recon, mbx, mby, q); err != nil {
			return err
		}
		s.fwdPred = motion.MV{}
		s.bwdPred = motion.MV{}
		return nil
	case bSkip:
		s.mcLuma(s.d.prevRef, px, py, s.fwdPred, s.pred.y[:])
		s.mcChroma(s.d.prevRef, px, py, s.fwdPred, s.pred.cb[:], s.pred.cr[:])
		s.copyPredToRecon(recon, px, py)
		s.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		return nil
	case bFwd, bBwd, bBi:
		var fwdMV, bwdMV motion.MV
		if mode == bFwd || mode == bBi {
			fwdMV = motion.MV{
				X: int16(int32(s.fwdPred.X) + entropy.ReadSE(&s.br)),
				Y: int16(int32(s.fwdPred.Y) + entropy.ReadSE(&s.br)),
			}
			s.fwdPred = fwdMV
		}
		if mode == bBwd || mode == bBi {
			bwdMV = motion.MV{
				X: int16(int32(s.bwdPred.X) + entropy.ReadSE(&s.br)),
				Y: int16(int32(s.bwdPred.Y) + entropy.ReadSE(&s.br)),
			}
			s.bwdPred = bwdMV
		}
		switch mode {
		case bFwd:
			s.mcLuma(s.d.prevRef, px, py, fwdMV, s.pred.y[:])
			s.mcChroma(s.d.prevRef, px, py, fwdMV, s.pred.cb[:], s.pred.cr[:])
		case bBwd:
			s.mcLuma(s.d.lastRef, px, py, bwdMV, s.pred.y[:])
			s.mcChroma(s.d.lastRef, px, py, bwdMV, s.pred.cb[:], s.pred.cr[:])
		case bBi:
			s.mcLuma(s.d.prevRef, px, py, fwdMV, s.pred.y[:])
			s.mcLuma(s.d.lastRef, px, py, bwdMV, s.pred.yAlt[:])
			interp.Avg(s.pred.y[:], 16, s.pred.yAlt[:], 16, 16, 16, s.d.kern)
			s.mcChroma(s.d.prevRef, px, py, fwdMV, s.pred.cb[:], s.pred.cr[:])
			s.mcChroma(s.d.lastRef, px, py, bwdMV, s.pred.cbAlt[:], s.pred.crAlt[:])
			interp.Avg(s.pred.cb[:], 8, s.pred.cbAlt[:], 8, 8, 8, s.d.kern)
			interp.Avg(s.pred.cr[:], 8, s.pred.crAlt[:], 8, 8, 8, s.d.kern)
		}
		if err := s.decodeResidualMB(recon, px, py, q); err != nil {
			return err
		}
		s.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		return nil
	}
	return fmt.Errorf("invalid B macroblock mode %d", mode)
}
