package mpeg2

import (
	"fmt"

	"hdvideobench/internal/bitstream"
	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/dct"
	"hdvideobench/internal/entropy"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/interp"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/motion"
	"hdvideobench/internal/quant"
)

// Decoder is the MPEG-2-class decoder (the paper's libmpeg2 role).
type Decoder struct {
	hdr  container.Header
	kern kernel.Set

	prevRef, lastRef *frame.Frame
	reorder          codec.DisplayReorderer

	pred predBuf

	dcPred  [3]int32
	fwdPred motion.MV
	bwdPred motion.MV
}

// NewDecoder returns a decoder for the stream described by hdr. The kernel
// set selects the scalar or SWAR motion-compensation path.
func NewDecoder(hdr container.Header, kern kernel.Set) (*Decoder, error) {
	if hdr.Codec != container.CodecMPEG2 {
		return nil, fmt.Errorf("mpeg2: stream codec is %v", hdr.Codec)
	}
	if err := validateSize(hdr); err != nil {
		return nil, err
	}
	return &Decoder{hdr: hdr, kern: kern}, nil
}

// Decode implements codec.Decoder.
func (d *Decoder) Decode(p container.Packet) ([]*frame.Frame, error) {
	recon, err := d.decodeFrame(p)
	if err != nil {
		return nil, err
	}
	return d.reorder.Add(recon), nil
}

// Flush implements codec.Decoder.
func (d *Decoder) Flush() []*frame.Frame { return d.reorder.Flush() }

func (d *Decoder) decodeFrame(p container.Packet) (*frame.Frame, error) {
	br := bitstream.NewReader(p.Payload)
	q := int32(br.ReadBits(5))
	if q < 1 || q > 31 {
		return nil, fmt.Errorf("mpeg2: invalid quantizer %d", q)
	}
	if p.Type == container.FrameP && d.lastRef == nil {
		return nil, fmt.Errorf("mpeg2: P frame before any reference")
	}
	if p.Type == container.FrameB && (d.lastRef == nil || d.prevRef == nil) {
		return nil, fmt.Errorf("mpeg2: B frame without two references")
	}

	recon := frame.NewPadded(d.hdr.Width, d.hdr.Height, codec.RefPad)
	recon.PTS = p.DisplayIndex

	mbCols := d.hdr.Width / 16
	mbRows := d.hdr.Height / 16
	for mby := 0; mby < mbRows; mby++ {
		d.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		d.fwdPred = motion.MV{}
		d.bwdPred = motion.MV{}
		for mbx := 0; mbx < mbCols; mbx++ {
			var err error
			switch p.Type {
			case container.FrameI:
				err = d.decodeIntraMB(br, recon, mbx, mby, q)
			case container.FrameP:
				err = d.decodePMB(br, recon, mbx, mby, q)
			case container.FrameB:
				err = d.decodeBMB(br, recon, mbx, mby, q)
			default:
				err = fmt.Errorf("mpeg2: unknown frame type %c", p.Type)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	if br.Err() != nil {
		return nil, fmt.Errorf("mpeg2: bitstream overrun: %w", br.Err())
	}

	recon.ExtendBorders()
	switch p.Type {
	case container.FrameI:
		// Closed GOP: mirror the encoder's reference reset at I frames.
		d.prevRef = nil
		d.lastRef = recon
	case container.FrameP:
		d.prevRef = d.lastRef
		d.lastRef = recon
	}
	return recon, nil
}

func (d *Decoder) decodeIntraMB(br *bitstream.Reader, recon *frame.Frame, mbx, mby int, q int32) error {
	px, py := mbx*16, mby*16
	for i := 0; i < 4; i++ {
		roff := recon.YOrigin + (py+8*(i/2))*recon.YStride + px + 8*(i%2)
		if err := d.intraBlock(br, recon.Y, roff, recon.YStride, q, 0); err != nil {
			return err
		}
	}
	cx, cy := px/2, py/2
	croff := recon.COrigin + cy*recon.CStride + cx
	if err := d.intraBlock(br, recon.Cb, croff, recon.CStride, q, 1); err != nil {
		return err
	}
	return d.intraBlock(br, recon.Cr, croff, recon.CStride, q, 2)
}

func (d *Decoder) intraBlock(br *bitstream.Reader, rec []byte, roff, rstride int, q int32, comp int) error {
	var blk [64]int32
	dc := d.dcPred[comp] + entropy.ReadSE(br)
	d.dcPred[comp] = dc
	blk[0] = dc
	if err := readRunLevels(br, &blk, 1, eob8); err != nil {
		return err
	}
	quant.Mpeg2DequantIntra(&blk, q)
	dct.Inverse8(&blk)
	codec.Store8Clip(rec, roff, rstride, &blk)
	return nil
}

// readRunLevels parses run/level pairs until the EOB marker.
func readRunLevels(br *bitstream.Reader, blk *[64]int32, start int, eob uint32) error {
	pos := start
	for {
		run := entropy.ReadUE(br)
		if run == eob {
			return nil
		}
		if br.Err() != nil {
			return fmt.Errorf("mpeg2: truncated block: %w", br.Err())
		}
		pos += int(run)
		if pos > 63 {
			return fmt.Errorf("mpeg2: run overflows block (pos %d)", pos)
		}
		level := entropy.ReadSE(br)
		if level == 0 {
			return fmt.Errorf("mpeg2: zero level")
		}
		blk[dct.Zigzag8[pos]] = level
		pos++
		if pos > 64 {
			return fmt.Errorf("mpeg2: block overflow")
		}
	}
}

// mcLuma fills the decoder's luma prediction buffer for a half-pel MV.
func (d *Decoder) mcLuma(ref *frame.Frame, px, py int, mv motion.MV, dst []byte) {
	ix, fx := splitHalf(int(mv.X))
	iy, fy := splitHalf(int(mv.Y))
	ix = clampMVToWindow(ix, px, d.hdr.Width, 16)
	iy = clampMVToWindow(iy, py, d.hdr.Height, 16)
	so := ref.YOrigin + (py+iy)*ref.YStride + px + ix
	interp.HalfPel(dst, 16, ref.Y[so:], ref.YStride, 16, 16, fx, fy, d.kern)
}

// mcChroma fills the chroma prediction buffers.
func (d *Decoder) mcChroma(ref *frame.Frame, px, py int, mv motion.MV, cb, cr []byte) {
	cvx := chromaMV(int(mv.X))
	cvy := chromaMV(int(mv.Y))
	ix, fx := splitHalf(cvx)
	iy, fy := splitHalf(cvy)
	cx, cy := px/2, py/2
	ix = clampMVToWindow(ix, cx, d.hdr.Width/2, 8)
	iy = clampMVToWindow(iy, cy, d.hdr.Height/2, 8)
	so := ref.COrigin + (cy+iy)*ref.CStride + cx + ix
	interp.HalfPel(cb, 8, ref.Cb[so:], ref.CStride, 8, 8, fx, fy, d.kern)
	interp.HalfPel(cr, 8, ref.Cr[so:], ref.CStride, 8, 8, fx, fy, d.kern)
}

// decodeResidualMB parses CBP and residual blocks, reconstructing
// pred + residual into recon.
func (d *Decoder) decodeResidualMB(br *bitstream.Reader, recon *frame.Frame, px, py int, q int32) error {
	cbp := int(br.ReadBits(6))
	var blk [64]int32
	for i := 0; i < 4; i++ {
		ro := recon.YOrigin + (py+8*(i/2))*recon.YStride + px + 8*(i%2)
		po := 8*(i/2)*16 + 8*(i%2)
		if cbp&(1<<(5-i)) != 0 {
			blk = [64]int32{}
			if err := readRunLevels(br, &blk, 0, eob64); err != nil {
				return err
			}
			quant.Mpeg2DequantInter(&blk, q)
			dct.Inverse8(&blk)
			codec.Add8Clip(recon.Y, ro, recon.YStride, d.pred.y[:], po, 16, &blk)
		} else {
			codec.Copy8(recon.Y, ro, recon.YStride, d.pred.y[:], po, 16)
		}
	}
	cx, cy := px/2, py/2
	cro := recon.COrigin + cy*recon.CStride + cx
	if cbp&2 != 0 {
		blk = [64]int32{}
		if err := readRunLevels(br, &blk, 0, eob64); err != nil {
			return err
		}
		quant.Mpeg2DequantInter(&blk, q)
		dct.Inverse8(&blk)
		codec.Add8Clip(recon.Cb, cro, recon.CStride, d.pred.cb[:], 0, 8, &blk)
	} else {
		codec.Copy8(recon.Cb, cro, recon.CStride, d.pred.cb[:], 0, 8)
	}
	if cbp&1 != 0 {
		blk = [64]int32{}
		if err := readRunLevels(br, &blk, 0, eob64); err != nil {
			return err
		}
		quant.Mpeg2DequantInter(&blk, q)
		dct.Inverse8(&blk)
		codec.Add8Clip(recon.Cr, cro, recon.CStride, d.pred.cr[:], 0, 8, &blk)
	} else {
		codec.Copy8(recon.Cr, cro, recon.CStride, d.pred.cr[:], 0, 8)
	}
	return nil
}

// copyPredToRecon mirrors the encoder's skip reconstruction.
func (d *Decoder) copyPredToRecon(recon *frame.Frame, px, py int) {
	for r := 0; r < 16; r++ {
		ro := recon.YOrigin + (py+r)*recon.YStride + px
		copy(recon.Y[ro:ro+16], d.pred.y[r*16:r*16+16])
	}
	cx, cy := px/2, py/2
	for r := 0; r < 8; r++ {
		ro := recon.COrigin + (cy+r)*recon.CStride + cx
		copy(recon.Cb[ro:ro+8], d.pred.cb[r*8:r*8+8])
		copy(recon.Cr[ro:ro+8], d.pred.cr[r*8:r*8+8])
	}
}

func (d *Decoder) decodePMB(br *bitstream.Reader, recon *frame.Frame, mbx, mby int, q int32) error {
	px, py := mbx*16, mby*16
	mode := entropy.ReadUE(br)
	switch mode {
	case pIntra:
		if err := d.decodeIntraMB(br, recon, mbx, mby, q); err != nil {
			return err
		}
		d.fwdPred = motion.MV{}
		return nil
	case pSkip:
		d.mcLuma(d.lastRef, px, py, motion.MV{}, d.pred.y[:])
		d.mcChroma(d.lastRef, px, py, motion.MV{}, d.pred.cb[:], d.pred.cr[:])
		d.copyPredToRecon(recon, px, py)
		d.fwdPred = motion.MV{}
		d.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		return nil
	case pInter:
		mv := motion.MV{
			X: int16(int32(d.fwdPred.X) + entropy.ReadSE(br)),
			Y: int16(int32(d.fwdPred.Y) + entropy.ReadSE(br)),
		}
		d.fwdPred = mv
		d.mcLuma(d.lastRef, px, py, mv, d.pred.y[:])
		d.mcChroma(d.lastRef, px, py, mv, d.pred.cb[:], d.pred.cr[:])
		if err := d.decodeResidualMB(br, recon, px, py, q); err != nil {
			return err
		}
		d.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		return nil
	}
	return fmt.Errorf("mpeg2: invalid P macroblock mode %d", mode)
}

func (d *Decoder) decodeBMB(br *bitstream.Reader, recon *frame.Frame, mbx, mby int, q int32) error {
	px, py := mbx*16, mby*16
	mode := entropy.ReadUE(br)
	switch mode {
	case bIntra:
		if err := d.decodeIntraMB(br, recon, mbx, mby, q); err != nil {
			return err
		}
		d.fwdPred = motion.MV{}
		d.bwdPred = motion.MV{}
		return nil
	case bSkip:
		d.mcLuma(d.prevRef, px, py, d.fwdPred, d.pred.y[:])
		d.mcChroma(d.prevRef, px, py, d.fwdPred, d.pred.cb[:], d.pred.cr[:])
		d.copyPredToRecon(recon, px, py)
		d.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		return nil
	case bFwd, bBwd, bBi:
		var fwdMV, bwdMV motion.MV
		if mode == bFwd || mode == bBi {
			fwdMV = motion.MV{
				X: int16(int32(d.fwdPred.X) + entropy.ReadSE(br)),
				Y: int16(int32(d.fwdPred.Y) + entropy.ReadSE(br)),
			}
			d.fwdPred = fwdMV
		}
		if mode == bBwd || mode == bBi {
			bwdMV = motion.MV{
				X: int16(int32(d.bwdPred.X) + entropy.ReadSE(br)),
				Y: int16(int32(d.bwdPred.Y) + entropy.ReadSE(br)),
			}
			d.bwdPred = bwdMV
		}
		switch mode {
		case bFwd:
			d.mcLuma(d.prevRef, px, py, fwdMV, d.pred.y[:])
			d.mcChroma(d.prevRef, px, py, fwdMV, d.pred.cb[:], d.pred.cr[:])
		case bBwd:
			d.mcLuma(d.lastRef, px, py, bwdMV, d.pred.y[:])
			d.mcChroma(d.lastRef, px, py, bwdMV, d.pred.cb[:], d.pred.cr[:])
		case bBi:
			d.mcLuma(d.prevRef, px, py, fwdMV, d.pred.y[:])
			d.mcLuma(d.lastRef, px, py, bwdMV, d.pred.yAlt[:])
			interp.Avg(d.pred.y[:], 16, d.pred.yAlt[:], 16, 16, 16, d.kern)
			d.mcChroma(d.prevRef, px, py, fwdMV, d.pred.cb[:], d.pred.cr[:])
			d.mcChroma(d.lastRef, px, py, bwdMV, d.pred.cbAlt[:], d.pred.crAlt[:])
			interp.Avg(d.pred.cb[:], 8, d.pred.cbAlt[:], 8, 8, 8, d.kern)
			interp.Avg(d.pred.cr[:], 8, d.pred.crAlt[:], 8, 8, 8, d.kern)
		}
		if err := d.decodeResidualMB(br, recon, px, py, q); err != nil {
			return err
		}
		d.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		return nil
	}
	return fmt.Errorf("mpeg2: invalid B macroblock mode %d", mode)
}
