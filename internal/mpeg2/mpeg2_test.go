package mpeg2

import (
	"testing"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/metrics"
	"hdvideobench/internal/seqgen"
)

func testConfig(w, h int) codec.Config {
	cfg := codec.Default(w, h)
	return cfg
}

// encodeDecode runs the full encode→decode loop and returns inputs, decoded
// frames and total coded bits.
func encodeDecode(t *testing.T, cfg codec.Config, seq seqgen.Sequence, n int, encK, decK kernel.Set) ([]*frame.Frame, []*frame.Frame, int) {
	t.Helper()
	cfg.Kernels = encK
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(enc.Header(), decK)
	if err != nil {
		t.Fatal(err)
	}
	gen := seqgen.New(seq, cfg.Width, cfg.Height)
	inputs := gen.Generate(n)

	var decoded []*frame.Frame
	bits := 0
	feed := func(pkts []container.Packet, err error) {
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			bits += 8 * len(p.Payload)
			fs, err := dec.Decode(p)
			if err != nil {
				t.Fatal(err)
			}
			decoded = append(decoded, fs...)
		}
	}
	for _, f := range inputs {
		feed(enc.Encode(f))
	}
	feed(enc.Flush())
	decoded = append(decoded, dec.Flush()...)
	return inputs, decoded, bits
}

func TestRoundTripQuality(t *testing.T) {
	cfg := testConfig(96, 80)
	inputs, decoded, bits := encodeDecode(t, cfg, seqgen.RushHour, 7, kernel.Scalar, kernel.Scalar)
	if len(decoded) != len(inputs) {
		t.Fatalf("decoded %d frames, want %d", len(decoded), len(inputs))
	}
	for i, f := range decoded {
		if f.PTS != i {
			t.Fatalf("frame %d has PTS %d — display order broken", i, f.PTS)
		}
		psnr := metrics.PSNRFrames(inputs[i], f)
		if psnr < 28 {
			t.Errorf("frame %d PSNR %.2f dB too low at Q=%d", i, psnr, cfg.Q)
		}
	}
	raw := 8 * frame.RawSize(cfg.Width, cfg.Height) * len(inputs)
	if bits >= raw/2 {
		t.Errorf("no compression: %d bits vs %d raw", bits, raw)
	}
}

func TestScalarSWARBitExact(t *testing.T) {
	cfg := testConfig(96, 80)
	cfgS := cfg
	cfgS.Kernels = kernel.Scalar
	cfgW := cfg
	cfgW.Kernels = kernel.SWAR
	encS, _ := NewEncoder(cfgS)
	encW, _ := NewEncoder(cfgW)
	gen := seqgen.New(seqgen.PedestrianArea, cfg.Width, cfg.Height)

	var pktsS, pktsW []container.Packet
	for i := 0; i < 7; i++ {
		f := gen.Frame(i)
		ps, err := encS.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		pw, err := encW.Encode(gen.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		pktsS = append(pktsS, ps...)
		pktsW = append(pktsW, pw...)
	}
	ps, _ := encS.Flush()
	pw, _ := encW.Flush()
	pktsS = append(pktsS, ps...)
	pktsW = append(pktsW, pw...)

	if len(pktsS) != len(pktsW) {
		t.Fatalf("packet counts differ: %d vs %d", len(pktsS), len(pktsW))
	}
	for i := range pktsS {
		if len(pktsS[i].Payload) != len(pktsW[i].Payload) {
			t.Fatalf("packet %d size differs: %d vs %d — scalar and SWAR kernels diverge",
				i, len(pktsS[i].Payload), len(pktsW[i].Payload))
		}
		for j := range pktsS[i].Payload {
			if pktsS[i].Payload[j] != pktsW[i].Payload[j] {
				t.Fatalf("packet %d byte %d differs", i, j)
			}
		}
	}
	// Decoding with either kernel set must give identical frames.
	decS, _ := NewDecoder(encS.Header(), kernel.Scalar)
	decW, _ := NewDecoder(encW.Header(), kernel.SWAR)
	for i := range pktsS {
		fs, err := decS.Decode(pktsS[i])
		if err != nil {
			t.Fatal(err)
		}
		fw, err := decW.Decode(pktsW[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(fs) != len(fw) {
			t.Fatal("decoder output counts differ")
		}
		for k := range fs {
			if metrics.PSNRFrames(fs[k], fw[k]) != 100 {
				t.Fatalf("decoded frame %d differs between kernel sets", fs[k].PTS)
			}
		}
	}
}

func TestGOPStructure(t *testing.T) {
	cfg := testConfig(96, 80)
	cfg.Kernels = kernel.Scalar
	enc, _ := NewEncoder(cfg)
	gen := seqgen.New(seqgen.RushHour, cfg.Width, cfg.Height)
	var types []container.FrameType
	for i := 0; i < 7; i++ {
		pkts, err := enc.Encode(gen.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			types = append(types, p.Type)
		}
	}
	pkts, _ := enc.Flush()
	for _, p := range pkts {
		types = append(types, p.Type)
	}
	want := []container.FrameType{'I', 'P', 'B', 'B', 'P', 'B', 'B'}
	if len(types) != len(want) {
		t.Fatalf("coded %d frames: %c", len(types), types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("coding order %c, want %c", types, want)
		}
	}
}

func TestPOnlyStream(t *testing.T) {
	cfg := testConfig(96, 80)
	cfg.BFrames = 0
	inputs, decoded, _ := encodeDecode(t, cfg, seqgen.BlueSky, 5, kernel.Scalar, kernel.Scalar)
	if len(decoded) != len(inputs) {
		t.Fatalf("decoded %d, want %d", len(decoded), len(inputs))
	}
	for i := range decoded {
		if psnr := metrics.PSNRFrames(inputs[i], decoded[i]); psnr < 27 {
			t.Errorf("frame %d PSNR %.2f", i, psnr)
		}
	}
}

func TestIntraPeriod(t *testing.T) {
	cfg := testConfig(96, 80)
	cfg.BFrames = 0
	cfg.IntraPeriod = 2
	cfg.Kernels = kernel.Scalar
	enc, _ := NewEncoder(cfg)
	gen := seqgen.New(seqgen.RushHour, cfg.Width, cfg.Height)
	var types []container.FrameType
	for i := 0; i < 5; i++ {
		pkts, _ := enc.Encode(gen.Frame(i))
		for _, p := range pkts {
			types = append(types, p.Type)
		}
	}
	want := []container.FrameType{'I', 'P', 'I', 'P', 'I'}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("types %c, want %c", types, want)
		}
	}
}

func TestQualityImprovesWithLowerQ(t *testing.T) {
	psnrAt := func(q int) float64 {
		cfg := testConfig(96, 80)
		cfg.Q = q
		inputs, decoded, _ := encodeDecode(t, cfg, seqgen.PedestrianArea, 4, kernel.Scalar, kernel.Scalar)
		sum := 0.0
		for i := range decoded {
			sum += metrics.PSNRFrames(inputs[i], decoded[i])
		}
		return sum / float64(len(decoded))
	}
	lo, hi := psnrAt(2), psnrAt(20)
	if lo <= hi {
		t.Errorf("PSNR at Q=2 (%.2f) must exceed PSNR at Q=20 (%.2f)", lo, hi)
	}
}

func TestBitrateGrowsWithLowerQ(t *testing.T) {
	bitsAt := func(q int) int {
		cfg := testConfig(96, 80)
		cfg.Q = q
		_, _, bits := encodeDecode(t, cfg, seqgen.PedestrianArea, 4, kernel.Scalar, kernel.Scalar)
		return bits
	}
	if bitsAt(2) <= bitsAt(20) {
		t.Error("bits at Q=2 must exceed bits at Q=20")
	}
}

func TestDecoderErrors(t *testing.T) {
	hdr := container.Header{Codec: container.CodecMPEG2, Width: 96, Height: 80, FPSNum: 25, FPSDen: 1}
	dec, err := NewDecoder(hdr, kernel.Scalar)
	if err != nil {
		t.Fatal(err)
	}
	// P frame with no reference.
	if _, err := dec.Decode(container.Packet{Type: container.FrameP, Payload: []byte{0x28}}); err == nil {
		t.Error("P without reference must fail")
	}
	// Wrong codec header.
	if _, err := NewDecoder(container.Header{Codec: container.CodecH264, Width: 96, Height: 80}, kernel.Scalar); err == nil {
		t.Error("wrong codec must be rejected")
	}
	// Garbage payload must error, not panic.
	dec2, _ := NewDecoder(hdr, kernel.Scalar)
	if _, err := dec2.Decode(container.Packet{Type: container.FrameI, Payload: []byte{0xFF, 0x00, 0x13}}); err == nil {
		t.Error("truncated I frame must fail")
	}
}

func TestEncoderRejectsWrongSize(t *testing.T) {
	cfg := testConfig(96, 80)
	enc, _ := NewEncoder(cfg)
	if _, err := enc.Encode(frame.New(64, 64)); err == nil {
		t.Error("wrong-size frame must be rejected")
	}
}

func TestStaticSceneCompressesBetter(t *testing.T) {
	// A P-frame-heavy static scene (rush hour) must use far fewer bits per
	// frame after the first I frame.
	cfg := testConfig(96, 80)
	cfg.Kernels = kernel.Scalar
	enc, _ := NewEncoder(cfg)
	gen := seqgen.New(seqgen.RushHour, cfg.Width, cfg.Height)
	var sizes []int
	for i := 0; i < 4; i++ {
		pkts, _ := enc.Encode(gen.Frame(i))
		for _, p := range pkts {
			sizes = append(sizes, len(p.Payload))
		}
	}
	if len(sizes) < 2 {
		t.Skip("not enough packets")
	}
	if sizes[1] >= sizes[0] {
		t.Errorf("P frame (%d bytes) should be smaller than I frame (%d bytes)", sizes[1], sizes[0])
	}
}
