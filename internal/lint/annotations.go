package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// The //hdvlint annotation grammar. Three directives exist:
//
//	//hdvlint:allow <analyzer> -- <reason>
//	//hdvlint:noalloc
//	//hdvlint:locked <mutexField>
//
// allow suppresses findings from exactly one named analyzer on the
// comment's own line and the line directly below it (so it works both
// as a trailing comment and on its own line above the finding). The
// reason is mandatory: an annotation is a reviewed exception, and the
// justification travels with it. noalloc marks a function whose body
// the noalloc analyzer patrols; locked documents a function as
// caller-locked for the named mutex (lockcheck treats its guarded-field
// accesses as held). Both attach to the function declaration's doc
// comment.
//
// The grammar itself is linted: an unknown directive verb, an allow
// naming an unknown analyzer, a missing reason, a misplaced noalloc or
// locked, and — the important one — a stale allow whose lines carry no
// finding anymore are all findings in their own right, so annotations
// cannot rot silently.
const directivePrefix = "//hdvlint:"

var allowRE = regexp.MustCompile(`^//hdvlint:allow\s+([A-Za-z_]\w*)\s+--\s+(\S.*)$`)

// allowAnn is one parsed //hdvlint:allow.
type allowAnn struct {
	analyzer string
	pos      token.Pos
	line     int
	used     bool
}

// annotations is the per-package directive harvest.
type annotations struct {
	allows   []*allowAnn
	problems []Finding // grammar findings, attributed to "hdvlint"
}

// parseAnnotations scans every comment in the package for hdvlint
// directives, validating the grammar. knownAnalyzers is the set of
// names an allow may legally reference.
func parseAnnotations(fset *token.FileSet, files []*ast.File, known map[string]bool) *annotations {
	a := &annotations{}
	for _, f := range files {
		docSpans := funcDocSpans(f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				verb := strings.TrimPrefix(text, directivePrefix)
				if i := strings.IndexAny(verb, " \t"); i >= 0 {
					verb = verb[:i]
				}
				switch verb {
				case "allow":
					m := allowRE.FindStringSubmatch(text)
					if m == nil {
						a.problem(pos, "malformed %sallow: want %sallow <analyzer> -- <reason>", directivePrefix, directivePrefix)
						continue
					}
					if !known[m[1]] {
						a.problem(pos, "%sallow names unknown analyzer %q", directivePrefix, m[1])
						continue
					}
					a.allows = append(a.allows, &allowAnn{analyzer: m[1], pos: c.Pos(), line: pos.Line})
				case "noalloc":
					if text != directivePrefix+"noalloc" {
						a.problem(pos, "malformed %snoalloc: the directive takes no arguments", directivePrefix)
						continue
					}
					if !inSpans(c.Pos(), docSpans) {
						a.problem(pos, "misplaced %snoalloc: it must sit in a function's doc comment", directivePrefix)
					}
				case "locked":
					rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix+"locked"))
					if rest == "" || strings.ContainsAny(rest, " \t") {
						a.problem(pos, "malformed %slocked: want %slocked <mutexField>", directivePrefix, directivePrefix)
						continue
					}
					if !inSpans(c.Pos(), docSpans) {
						a.problem(pos, "misplaced %slocked: it must sit in a function's doc comment", directivePrefix)
					}
				default:
					a.problem(pos, "unknown hdvlint directive %q", verb)
				}
			}
		}
	}
	return a
}

func (a *annotations) problem(pos token.Position, format string, args ...any) {
	a.problems = append(a.problems, Finding{
		Analyzer: grammarAnalyzer,
		Pos:      pos,
		Message:  sprintf(format, args...),
	})
}

// suppresses reports whether an allow for the analyzer covers the line,
// marking the matching annotation used (for stale detection).
func (a *annotations) suppresses(analyzer string, line int) bool {
	hit := false
	for _, al := range a.allows {
		if al.analyzer == analyzer && (al.line == line || al.line == line-1) {
			al.used = true
			hit = true
		}
	}
	return hit
}

// stale returns a finding for every allow that suppressed nothing.
func (a *annotations) stale(fset *token.FileSet) []Finding {
	var out []Finding
	for _, al := range a.allows {
		if !al.used {
			out = append(out, Finding{
				Analyzer: grammarAnalyzer,
				Pos:      fset.Position(al.pos),
				Message: sprintf("stale %sallow %s: no %s finding on this line or the next",
					directivePrefix, al.analyzer, al.analyzer),
			})
		}
	}
	return out
}

// funcDocSpans returns the position ranges of every function doc
// comment in the file, the only legal home for noalloc/locked.
func funcDocSpans(f *ast.File) [][2]token.Pos {
	var spans [][2]token.Pos
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
			spans = append(spans, [2]token.Pos{fd.Doc.Pos(), fd.Doc.End()})
		}
	}
	return spans
}

func inSpans(pos token.Pos, spans [][2]token.Pos) bool {
	for _, s := range spans {
		if pos >= s[0] && pos <= s[1] {
			return true
		}
	}
	return false
}

// hasDirective reports whether a doc comment group carries the given
// bare directive (e.g. "noalloc"), and directiveArg returns the single
// argument of an argumented directive ("locked mu" -> "mu").
func hasDirective(doc *ast.CommentGroup, verb string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directivePrefix+verb {
			return true
		}
	}
	return false
}

func directiveArgs(doc *ast.CommentGroup, verb string) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, directivePrefix+verb+" "); ok {
			if arg := strings.TrimSpace(rest); arg != "" && !strings.ContainsAny(arg, " \t") {
				out = append(out, arg)
			}
		}
	}
	return out
}
