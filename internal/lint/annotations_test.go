package lint_test

import (
	"strings"
	"testing"

	"hdvideobench/internal/lint"
)

// TestAnnotationGrammar pins the grammar linting: unknown directives,
// allows naming unknown analyzers, allows without a reason, misplaced
// function directives, and stale allows are all findings, attributed to
// the "hdvlint" pseudo-analyzer. Expectations are explicit here rather
// than want comments because several findings land on the directive's
// own line, where a want comment cannot sit.
func TestAnnotationGrammar(t *testing.T) {
	findings := runFixture(t, "grammar", "hdvideobench/internal/lint/fixture/grammar")

	wants := []string{
		`unknown hdvlint directive "frobnicate"`,
		`names unknown analyzer "nosuch"`,
		"malformed //hdvlint:allow",
		"stale //hdvlint:allow noalloc",
		"misplaced //hdvlint:noalloc",
		"malformed //hdvlint:locked",
	}
	for _, want := range wants {
		found := false
		for _, f := range findings {
			if strings.Contains(f.Message, want) {
				found = true
				if f.Analyzer != "hdvlint" {
					t.Errorf("finding %q attributed to %q, want the hdvlint pseudo-analyzer", f.Message, f.Analyzer)
				}
				break
			}
		}
		if !found {
			t.Errorf("no finding containing %q; got:\n%s", want, findingList(findings))
		}
	}
	if len(findings) != len(wants) {
		t.Errorf("got %d findings, want %d:\n%s", len(findings), len(wants), findingList(findings))
	}
}

func findingList(fs []lint.Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}
