// Package lint is the hdvlint suite: four static analyzers that turn
// this repository's load-bearing runtime invariants into
// compiler-adjacent checks, rejecting the regression pattern before it
// merges instead of catching it in a test after the fact.
//
//   - determinism: the bitstream must be byte-identical across workers,
//     slices, wavefront and ladder runs. In the bitstream-affecting
//     packages, anything order- or clock-dependent (map iteration,
//     time.Now/Since, math/rand, racing selects) is a finding.
//   - noalloc: the macroblock/motion hot paths are allocation-free
//     (TestSearchAllocs proves it at runtime for the searchers);
//     functions marked //hdvlint:noalloc are statically screened for
//     allocation-causing constructs.
//   - lockcheck: fields annotated "// guarded by mu" may only be
//     touched by functions that (flow-insensitively) hold mu, are
//     documented caller-locked, or are still constructing the value.
//   - metriclint: registry registration sites must carry statically
//     valid Prometheus names, non-empty HELP, and legal labels/buckets,
//     so a malformed series fails the lint run instead of a scrape.
//
// Findings are suppressed one line at a time with
// `//hdvlint:allow <analyzer> -- <reason>`; the annotation grammar is
// itself linted (see annotations.go), so unknown analyzers, missing
// reasons and stale annotations are findings too.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"hdvideobench/internal/lint/analysis"
	"hdvideobench/internal/lint/loader"
)

// grammarAnalyzer is the pseudo-analyzer name annotation-grammar
// findings are attributed to. They are never suppressible.
const grammarAnalyzer = "hdvlint"

// Analyzers is the full suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	Determinism,
	NoAlloc,
	LockCheck,
	MetricLint,
}

// Finding is one reported diagnostic after annotation filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// Run applies the analyzers to every package and returns the surviving
// findings in file/line order.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		out = append(out, RunPackage(pkg, analyzers)...)
	}
	sortFindings(out)
	return out
}

// RunPackage applies the analyzers to one package: runs each in-scope
// analyzer, filters its diagnostics through the //hdvlint:allow
// annotations, and appends the annotation-grammar findings (malformed
// or stale annotations). Allow names are validated against the full
// suite plus whatever extra analyzers were passed, so running a subset
// (as the fixture tests do) never misreports a legitimate allow as
// unknown.
func RunPackage(pkg *loader.Package, analyzers []*analysis.Analyzer) []Finding {
	known := make(map[string]bool)
	for _, a := range Analyzers {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	anns := parseAnnotations(pkg.Fset, pkg.Files, known)

	var out []Finding
	for _, a := range analyzers {
		if a.Scoped != nil && !a.Scoped(pkg.Path) {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if anns.suppresses(name, pos.Line) {
				return
			}
			out = append(out, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			out = append(out, Finding{Analyzer: name, Message: sprintf("analyzer error: %v", err)})
		}
	}
	out = append(out, anns.problems...)
	out = append(out, anns.stale(pkg.Fset)...)
	sortFindings(out)
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
