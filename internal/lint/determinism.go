package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"hdvideobench/internal/lint/analysis"
)

// deterministicPkgs is the bitstream-affecting package set: everything
// between raw frames and coded bytes, plus the schedulers that order
// the work. The golden-digest equivalence matrix pins these packages'
// output byte-identical across workers, slices, wavefront and kernel
// settings; nothing in them may observe iteration order, the clock, or
// randomness on any path that can reach encoder output.
var deterministicPkgs = map[string]bool{
	"hdvideobench/internal/codec":     true,
	"hdvideobench/internal/mpeg2":     true,
	"hdvideobench/internal/mpeg4":     true,
	"hdvideobench/internal/h264":      true,
	"hdvideobench/internal/motion":    true,
	"hdvideobench/internal/interp":    true,
	"hdvideobench/internal/entropy":   true,
	"hdvideobench/internal/bitstream": true,
	"hdvideobench/internal/pipeline":  true,
	"hdvideobench/internal/stream":    true,
}

// Determinism flags nondeterminism sources in the bitstream-affecting
// packages: map iteration (order varies run to run), time.Now and
// time.Since (collector timing is the one legitimate use, annotated
// per site), math/rand, and select statements with two or more
// value-binding receive cases (whichever result channel is ready first
// wins, so downstream order depends on scheduling).
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid map iteration, wall-clock reads, math/rand and racing selects " +
		"in the packages whose output must be byte-identical across parallelism settings",
	Scoped: func(path string) bool { return deterministicPkgs[path] },
	Run:    runDeterminism,
}

func runDeterminism(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s: pseudo-randomness has no place in a bitstream-affecting package", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(n.X)
				if t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.Pos(), "map iteration order varies run to run; iterate sorted keys instead (annotate the key-collecting range with an allow)")
					}
				}
			case *ast.SelectorExpr:
				obj := pass.TypesInfo.Uses[n.Sel]
				if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
					if name := fn.Name(); name == "Now" || name == "Since" {
						pass.Reportf(n.Pos(), "time.%s reads the wall clock; only collector timing may, behind an explicit allow", name)
					}
				}
			case *ast.SelectStmt:
				binding := 0
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CommClause)
					if !ok || cc.Comm == nil {
						continue
					}
					if as, ok := cc.Comm.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
						if u, ok := as.Rhs[0].(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
							binding++
						}
					}
				}
				if binding >= 2 {
					pass.Reportf(n.Pos(), "select binds results from %d channels; arrival order decides which wins, so downstream state diverges across runs", binding)
				}
			}
			return true
		})
	}
	return nil
}
