package lint_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"hdvideobench/internal/lint"
	"hdvideobench/internal/lint/loader"
)

// fixtures shares one loader across every fixture test, so the standard
// library closure the fixtures import is type-checked once per run.
var fixtures = loader.New("../..")

// runFixture type-checks testdata/src/<name> under importPath — chosen
// per test so scoped analyzers (determinism) see the package path they
// gate on — and runs the full suite over it.
func runFixture(t *testing.T, name, importPath string) []lint.Finding {
	t.Helper()
	pkg, err := fixtures.CheckDir(filepath.Join("testdata", "src", name), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return lint.RunPackage(pkg, lint.Analyzers)
}

// wantRE extracts the backtick-quoted regexes of a `// want` comment.
var wantRE = regexp.MustCompile("`([^`]*)`")

type wantKey struct {
	file string
	line int
}

// parseWants reads the fixture sources and returns the expected-finding
// regexes keyed by (file, line). The convention is analysistest's: a
// comment `// want `regex1` `regex2“ on the line the findings land on.
func parseWants(t *testing.T, dir string) map[wantKey][]*regexp.Regexp {
	t.Helper()
	out := make(map[wantKey][]*regexp.Regexp)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "want `")
			if idx < 0 {
				continue
			}
			k := wantKey{file: path, line: i + 1}
			for _, m := range wantRE.FindAllStringSubmatch(line[idx:], -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", path, i+1, m[1], err)
				}
				out[k] = append(out[k], re)
			}
		}
	}
	return out
}

// checkFixture runs the suite over a fixture and compares the findings
// against its want comments: every finding must be expected on its
// line, and every want must match a finding on its line.
func checkFixture(t *testing.T, name, importPath string) {
	t.Helper()
	findings := runFixture(t, name, importPath)
	wants := parseWants(t, filepath.Join("testdata", "src", name))

	byKey := make(map[wantKey][]string)
	for _, f := range findings {
		k := wantKey{file: f.Pos.Filename, line: f.Pos.Line}
		byKey[k] = append(byKey[k], f.Message)
		matched := false
		for _, re := range wants[k] {
			if re.MatchString(f.Message) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			matched := false
			for _, msg := range byKey[k] {
				if re.MatchString(msg) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no finding matching %q", k.file, k.line, re)
			}
		}
	}
}

func TestDeterminismFixtures(t *testing.T) {
	checkFixture(t, "determinism/bad", "hdvideobench/internal/codec")
	checkFixture(t, "determinism/allowed", "hdvideobench/internal/motion")
	checkFixture(t, "determinism/clean", "hdvideobench/internal/h264")
}

// TestDeterminismScope pins the scoping: the same forbidden constructs
// are not findings outside the bitstream-affecting package set.
func TestDeterminismScope(t *testing.T) {
	findings := runFixture(t, "determinism/bad", "hdvideobench/internal/lint/fixture/unscoped")
	for _, f := range findings {
		t.Errorf("out-of-scope package produced finding: %s", f)
	}
}

func TestNoAllocFixtures(t *testing.T) {
	checkFixture(t, "noalloc/bad", "hdvideobench/internal/lint/fixture/noalloc/bad")
	checkFixture(t, "noalloc/allowed", "hdvideobench/internal/lint/fixture/noalloc/allowed")
	checkFixture(t, "noalloc/clean", "hdvideobench/internal/lint/fixture/noalloc/clean")
}

func TestLockCheckFixtures(t *testing.T) {
	checkFixture(t, "lockcheck/bad", "hdvideobench/internal/lint/fixture/lockcheck/bad")
	checkFixture(t, "lockcheck/allowed", "hdvideobench/internal/lint/fixture/lockcheck/allowed")
	checkFixture(t, "lockcheck/clean", "hdvideobench/internal/lint/fixture/lockcheck/clean")
}

func TestMetricLintFixtures(t *testing.T) {
	checkFixture(t, "metriclint/bad", "hdvideobench/internal/lint/fixture/metriclint/bad")
	checkFixture(t, "metriclint/allowed", "hdvideobench/internal/lint/fixture/metriclint/allowed")
	checkFixture(t, "metriclint/clean", "hdvideobench/internal/lint/fixture/metriclint/clean")
}

// TestTreeClean is the acceptance gate in test form: the whole module
// lints clean, so `hdvlint ./...` exits 0.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l := loader.New("../..")
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range lint.Run(pkgs, lint.Analyzers) {
		t.Errorf("tree not lint-clean: %s", f)
	}
}
