// Package loader type-checks Go packages for the hdvlint analyzers
// using nothing but the standard library and the go command. The usual
// driver for go/analysis tooling is golang.org/x/tools/go/packages;
// this container carries no modules beyond std, so the loader rebuilds
// the slice of it hdvlint needs: `go list -deps -json` supplies the
// package graph (file lists, resolved import paths, the std vendor
// ImportMap), and every package — the module's own and its standard
// library closure — is type-checked from source with go/types in the
// dependency order go list already emits. The whole module plus its
// ~200-package std closure checks in under two seconds, which is cheap
// enough to pay on every lint run and keeps the tool fully offline.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one fully type-checked target package: syntax, types, and
// the uses/defs/selections maps the analyzers resolve through.
type Package struct {
	Path  string // import path
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
}

// Loader loads and caches type-checked packages. One Loader amortizes
// the standard-library closure across every Load and CheckDir call, so
// tests share a package-level instance.
type Loader struct {
	dir  string // directory go list runs from (the module root)
	fset *token.FileSet
	list map[string]*listPkg
	pkgs map[string]*types.Package
}

// New returns a loader rooted at dir (the module directory go list
// resolves patterns and module-internal imports from).
func New(dir string) *Loader {
	return &Loader{
		dir:  dir,
		fset: token.NewFileSet(),
		list: make(map[string]*listPkg),
		pkgs: make(map[string]*types.Package),
	}
}

// Fset returns the file set all loaded syntax shares.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves the go list patterns (e.g. "./...") and returns every
// matched package type-checked with full syntax and info maps, in
// dependency order. Dependencies outside the pattern set are checked
// too (imports need their types) but not returned.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	targets, err := l.ensure(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range targets {
		p, err := l.check(l.list[path])
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// CheckDir parses every .go file in dir as a single package and
// type-checks it under the given import path, resolving its imports
// through the loader's module root. This is how fixture packages under
// testdata — invisible to go list patterns — are loaded: the import
// path is chosen by the test, so scoped analyzers (determinism) see
// the package path they gate on.
func (l *Loader) CheckDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no .go files in %s", dir)
	}
	lp := &listPkg{ImportPath: importPath, Dir: dir, GoFiles: names}
	// Fixture imports may name packages outside the module's own
	// dependency closure (math/rand, say); list whatever is missing.
	files, err := l.parse(lp)
	if err != nil {
		return nil, err
	}
	var missing []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path != "unsafe" && l.list[path] == nil {
				missing = append(missing, path)
			}
		}
	}
	if len(missing) > 0 {
		if _, err := l.ensure(missing); err != nil {
			return nil, err
		}
	}
	return l.checkFiles(lp, files)
}

// ensure runs go list over the patterns, merges the dependency graph
// into the loader, and returns the import paths the patterns matched
// directly (DepOnly=false), in dependency order.
func (l *Loader) ensure(patterns []string) ([]string, error) {
	args := append([]string{
		"list", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Imports,ImportMap,Standard,DepOnly",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	// CGO_ENABLED=0 selects the pure-Go file sets (netgo and friends),
	// which is what keeps source type-checking of std viable offline.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = string(ee.Stderr)
		}
		return nil, fmt.Errorf("loader: go list %v: %s", patterns, msg)
	}
	var targets []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %w", err)
		}
		q := p
		if l.list[p.ImportPath] == nil {
			l.list[p.ImportPath] = &q
		}
		if !p.DepOnly {
			targets = append(targets, p.ImportPath)
		}
	}
	return targets, nil
}

func (l *Loader) parse(lp *listPkg) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks a listed package with full info maps.
func (l *Loader) check(lp *listPkg) (*Package, error) {
	files, err := l.parse(lp)
	if err != nil {
		return nil, err
	}
	return l.checkFiles(lp, files)
}

func (l *Loader) checkFiles(lp *listPkg, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tpkg, err := l.config(lp).Check(lp.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", lp.ImportPath, err)
	}
	l.pkgs[lp.ImportPath] = tpkg
	return &Package{
		Path:  lp.ImportPath,
		Name:  tpkg.Name(),
		Dir:   lp.Dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// dep type-checks a dependency (no syntax or info retained).
func (l *Loader) dep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	lp, ok := l.list[path]
	if !ok {
		return nil, fmt.Errorf("loader: package %q not in the go list graph", path)
	}
	files, err := l.parse(lp)
	if err != nil {
		return nil, err
	}
	tpkg, err := l.config(lp).Check(path, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking dependency %s: %w", path, err)
	}
	l.pkgs[path] = tpkg
	return tpkg, nil
}

func (l *Loader) config(lp *listPkg) *types.Config {
	return &types.Config{
		Importer: pkgImporter{l: l, lp: lp},
		Sizes:    types.SizesFor("gc", "amd64"),
		// Collected errors surface through Check's return; the callback
		// just stops the checker from bailing at the first one.
		Error: func(error) {},
	}
}

// pkgImporter resolves one package's import strings: through its go
// list ImportMap first (std vendoring: "golang.org/x/net/..." maps to
// "vendor/golang.org/x/net/..."), then into the shared cache.
type pkgImporter struct {
	l  *Loader
	lp *listPkg
}

func (i pkgImporter) Import(path string) (*types.Package, error) {
	if r, ok := i.lp.ImportMap[path]; ok {
		path = r
	}
	return i.l.dep(path)
}
