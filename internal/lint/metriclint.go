package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"hdvideobench/internal/lint/analysis"
)

// MetricLint is the static companion to obs.LintText: the runtime
// linter validates a scrape that already happened, this analyzer
// validates the registration sites that produce it, so a malformed
// series fails `hdvlint ./...` instead of the first scrape in
// production. Every call to the obs.Registry registration methods
// (Counter, Gauge, Histogram, CounterFunc, GaugeFunc) must pass a
// compile-time-constant metric name matching the Prometheus grammar, a
// constant non-empty HELP string, label names that are constant, legal,
// non-duplicate and never the reserved "le", and — for histograms —
// bucket bounds that are statically checkable (nil for the default
// layout, obs.DefTimeBuckets, obs.ExpBuckets with valid constant
// arguments, or an ascending []float64 literal).
var MetricLint = &analysis.Analyzer{
	Name: "metriclint",
	Doc: "require statically valid Prometheus names, HELP strings, labels and " +
		"buckets at every obs.Registry registration site",
	Run: runMetricLint,
}

const obsPkgPath = "hdvideobench/internal/obs"

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// registryMethods maps method name -> index of the first label argument
// (-1 when the method takes no labels).
var registryMethods = map[string]int{
	"Counter":     2,
	"Gauge":       2,
	"Histogram":   3,
	"CounterFunc": -1,
	"GaugeFunc":   -1,
}

func runMetricLint(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			labelStart, isReg := registryMethods[sel.Sel.Name]
			if !isReg || !isRegistryMethod(pass, sel) {
				return true
			}
			checkRegistration(pass, call, sel.Sel.Name, labelStart)
			return true
		})
	}
	return nil
}

// isRegistryMethod reports whether the selector resolves to a method on
// the obs.Registry type.
func isRegistryMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPkgPath {
		return false
	}
	recv, ok := deref(s.Recv()).(*types.Named)
	return ok && recv.Obj().Name() == "Registry"
}

func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, method string, labelStart int) {
	if len(call.Args) < 2 {
		return // does not compile anyway
	}
	// Metric name: constant, Prometheus grammar.
	if name, ok := constString(pass, call.Args[0]); !ok {
		pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time constant so it can be checked against the Prometheus grammar")
	} else if !metricNameRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(), "metric name %q does not match the Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]*", name)
	}
	// HELP: constant, non-empty.
	if help, ok := constString(pass, call.Args[1]); !ok {
		pass.Reportf(call.Args[1].Pos(), "HELP string must be a compile-time constant")
	} else if help == "" {
		pass.Reportf(call.Args[1].Pos(), "HELP string must not be empty; say what the series measures")
	}
	// Histogram bounds.
	if method == "Histogram" && len(call.Args) >= 3 {
		checkBounds(pass, call.Args[2])
	}
	// Labels.
	if labelStart < 0 {
		return
	}
	if call.Ellipsis.IsValid() {
		pass.Reportf(call.Ellipsis, "label names must be listed literally, not spread from a slice")
		return
	}
	seen := make(map[string]bool)
	for _, arg := range call.Args[labelStart:] {
		l, ok := constString(pass, arg)
		if !ok {
			pass.Reportf(arg.Pos(), "label name must be a compile-time constant")
			continue
		}
		switch {
		case !labelNameRE.MatchString(l):
			pass.Reportf(arg.Pos(), "label name %q does not match the Prometheus grammar [a-zA-Z_][a-zA-Z0-9_]*", l)
		case l == "le":
			pass.Reportf(arg.Pos(), "label name \"le\" is reserved for histogram buckets")
		case seen[l]:
			pass.Reportf(arg.Pos(), "duplicate label name %q", l)
		}
		seen[l] = true
	}
}

// checkBounds accepts the statically checkable bucket spellings and
// flags everything else.
func checkBounds(pass *analysis.Pass, arg ast.Expr) {
	info := pass.TypesInfo
	// nil: the registry substitutes DefTimeBuckets.
	if tv, ok := info.Types[arg]; ok && tv.IsNil() {
		return
	}
	switch e := ast.Unparen(arg).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Pkg().Path() == obsPkgPath && v.Name() == "DefTimeBuckets" {
			return
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil &&
			v.Pkg().Path() == obsPkgPath && v.Name() == "DefTimeBuckets" {
			return
		}
	case *ast.CallExpr:
		if fn := calledObsFunc(pass, e); fn == "ExpBuckets" {
			checkExpBuckets(pass, e)
			return
		}
	case *ast.CompositeLit:
		prev := 0.0
		first := true
		for _, el := range e.Elts {
			v := constFloat(pass, el)
			if v == nil {
				pass.Reportf(el.Pos(), "histogram bucket bounds must be compile-time constants")
				return
			}
			if !first && *v <= prev {
				pass.Reportf(el.Pos(), "histogram bucket bounds must be strictly ascending (%v after %v)", *v, prev)
				return
			}
			prev, first = *v, false
		}
		if len(e.Elts) == 0 {
			pass.Reportf(e.Pos(), "histogram needs at least one bucket bound (or nil for the default layout)")
		}
		return
	}
	pass.Reportf(arg.Pos(), "histogram bounds are not statically checkable; use nil, obs.DefTimeBuckets, obs.ExpBuckets with constant arguments, or a []float64 literal")
}

func checkExpBuckets(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 3 {
		return
	}
	start := constFloat(pass, call.Args[0])
	factor := constFloat(pass, call.Args[1])
	n := constFloat(pass, call.Args[2])
	if start == nil || factor == nil || n == nil {
		pass.Reportf(call.Pos(), "obs.ExpBuckets arguments must be compile-time constants")
		return
	}
	if *start <= 0 || *factor <= 1 || *n < 1 {
		pass.Reportf(call.Pos(), "obs.ExpBuckets(%v, %v, %v) panics at registration: need start > 0, factor > 1, n >= 1", *start, *factor, *n)
	}
}

func calledObsFunc(pass *analysis.Pass, call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[f.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == obsPkgPath {
			return fn.Name()
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[f].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == obsPkgPath {
			return fn.Name()
		}
	}
	return ""
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func constFloat(pass *analysis.Pass, e ast.Expr) *float64 {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return nil
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() == constant.Unknown {
		return nil
	}
	// Float64Val's second result reports exactness, which constants
	// like 0.001 legitimately lack; nearest is good enough to lint.
	f, _ := constant.Float64Val(v)
	return &f
}
