package lint

import (
	"go/ast"
	"go/types"
	"regexp"

	"hdvideobench/internal/lint/analysis"
)

// LockCheck enforces the "// guarded by <mu>" discipline: a struct
// field whose doc or trailing comment says it is guarded by a mutex
// field may only be accessed in functions that visibly hold that
// mutex. The check is flow-insensitive by design — it asks "does this
// function lock the right mutex at all?", not "does the lock dominate
// the access?" — which is exactly the strength of the comments it
// replaces and catches the real regression: a new method that touches
// shared state with no locking anywhere in sight.
//
// An access is accepted when any enclosing function (literal or
// declaration):
//
//   - calls <expr>.<mu>.Lock() or .RLock() on an expression of the
//     guarded struct's type (defer'd unlocks ride along for free);
//   - carries the //hdvlint:locked <mu> directive, the machine-readable
//     spelling of "caller must hold mu" (dropLocked, evictLocked,
//     pruneLocked);
//   - or constructed the value itself: the receiver of the access is a
//     local variable initialized from a fresh composite literal or
//     new(T) in the same function — the Open/NewX constructor pattern,
//     where the value has not escaped yet and locking would be noise.
var LockCheck = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "require functions that touch a `// guarded by mu` field to hold mu, " +
		"be marked //hdvlint:locked mu, or still be constructing the value",
	Run: runLockCheck,
}

var guardedRE = regexp.MustCompile(`guarded by ([A-Za-z_]\w*)`)

// lockGuard records one guarded field: the mutex field's name and the
// named struct type both fields live in.
type lockGuard struct {
	mu    string
	owner *types.Named
}

func runLockCheck(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLockFunc(pass, fd, guards)
			}
		}
	}
	return nil
}

// collectGuards finds every "// guarded by mu" field annotation in the
// package and resolves it to (field object -> guard). A guard naming a
// mutex field that does not exist in the same struct is itself a
// finding — the annotation would otherwise silently protect nothing.
func collectGuards(pass *analysis.Pass) map[*types.Var]lockGuard {
	guards := make(map[*types.Var]lockGuard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			named, _ := pass.TypesInfo.Defs[ts.Name].Type().(*types.Named)
			if named == nil {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mu := guardComment(fld)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					pass.Reportf(fld.Pos(), "field is '// guarded by %s' but struct %s has no field %q", mu, ts.Name.Name, mu)
					continue
				}
				for _, name := range fld.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[obj] = lockGuard{mu: mu, owner: named}
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardComment(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockFrame is the flow-insensitive fact set of one function body.
type lockFrame struct {
	node ast.Node
	// locked: mutex field name -> owner types locked anywhere in the
	// body via <expr>.<mu>.Lock()/.RLock().
	locked map[string][]types.Type
	// directives: mu names from //hdvlint:locked (FuncDecl only).
	directives map[string]bool
	// fresh: local objects initialized from a fresh composite literal
	// or new(T) in this body — values still under construction.
	fresh map[types.Object]bool
}

func checkLockFunc(pass *analysis.Pass, fd *ast.FuncDecl, guards map[*types.Var]lockGuard) {
	info := pass.TypesInfo

	// Phase 1: collect facts for the declaration and every nested
	// literal, attributed to the innermost enclosing function body.
	frames := map[ast.Node]*lockFrame{}
	newFrame := func(n ast.Node) *lockFrame {
		fr := &lockFrame{
			node:       n,
			locked:     map[string][]types.Type{},
			directives: map[string]bool{},
			fresh:      map[types.Object]bool{},
		}
		frames[n] = fr
		return fr
	}
	root := newFrame(fd)
	for _, mu := range directiveArgs(fd.Doc, "locked") {
		root.directives[mu] = true
	}

	var stack []*lockFrame
	stack = append(stack, root)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m == n {
					return true
				}
				stack = append(stack, newFrame(m))
				walk(m.Body)
				stack = stack[:len(stack)-1]
				return false
			case *ast.CallExpr:
				recordLock(info, stack[len(stack)-1], m)
			case *ast.AssignStmt:
				recordFresh(info, stack[len(stack)-1], m)
			case *ast.ValueSpec:
				recordFreshSpec(info, stack[len(stack)-1], m)
			}
			return true
		})
	}
	walk(fd.Body)

	// Phase 2: check every guarded-field access against the facts of
	// its enclosing function chain.
	var chain []*lockFrame
	chain = append(chain, root)
	var check func(n ast.Node)
	check = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m == n {
					return true
				}
				chain = append(chain, frames[m])
				check(m.Body)
				chain = chain[:len(chain)-1]
				return false
			case *ast.SelectorExpr:
				sel := info.Selections[m]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				fieldVar, ok := sel.Obj().(*types.Var)
				if !ok {
					return true
				}
				g, guarded := guards[fieldVar]
				if !guarded {
					return true
				}
				if !accessAllowed(info, chain, m, g) {
					pass.Reportf(m.Pos(), "%s.%s is guarded by %s, but %s neither locks it, nor is marked //hdvlint:locked %s, nor is constructing the value",
						g.owner.Obj().Name(), fieldVar.Name(), g.mu, funcDesc(fd), g.mu)
				}
			}
			return true
		})
	}
	check(fd.Body)
}

// recordLock matches <base>.<mu>.Lock() / .RLock() and records the
// mutex name with the base expression's (pointer-stripped) type.
func recordLock(info *types.Info, fr *lockFrame, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return
	}
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return
	}
	base := info.TypeOf(muSel.X)
	if base == nil {
		return
	}
	fr.locked[muSel.Sel.Name] = append(fr.locked[muSel.Sel.Name], deref(base))
}

// recordFresh marks `x := &T{...}`, `x := T{...}` and `x := new(T)`.
func recordFresh(info *types.Info, fr *lockFrame, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil && isFreshExpr(info, as.Rhs[i]) {
			fr.fresh[obj] = true
		}
	}
}

func recordFreshSpec(info *types.Info, fr *lockFrame, vs *ast.ValueSpec) {
	if len(vs.Values) != len(vs.Names) {
		return
	}
	for i, name := range vs.Names {
		if obj := info.Defs[name]; obj != nil && isFreshExpr(info, vs.Values[i]) {
			fr.fresh[obj] = true
		}
	}
}

func isFreshExpr(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, lit := e.X.(*ast.CompositeLit)
		return e.Op.String() == "&" && lit
	case *ast.CallExpr:
		if id := calleeIdent(e.Fun); id != nil {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

// accessAllowed walks the enclosing chain innermost-out looking for a
// reason the guarded access is fine.
func accessAllowed(info *types.Info, chain []*lockFrame, sel *ast.SelectorExpr, g lockGuard) bool {
	for i := len(chain) - 1; i >= 0; i-- {
		fr := chain[i]
		if fr == nil {
			continue
		}
		if fr.directives[g.mu] {
			return true
		}
		for _, t := range fr.locked[g.mu] {
			if sameNamed(t, g.owner) {
				return true
			}
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if obj != nil && fr.fresh[obj] && sameNamed(deref(obj.Type()), g.owner) {
				return true
			}
		}
	}
	return false
}

func sameNamed(t types.Type, owner *types.Named) bool {
	n, ok := deref(t).(*types.Named)
	return ok && n.Obj() == owner.Obj()
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func funcDesc(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return "method " + fd.Name.Name
	}
	return "function " + fd.Name.Name
}
