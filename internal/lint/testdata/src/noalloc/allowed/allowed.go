// Package na (allowed fixture): a construct the compiler keeps on the
// stack, suppressed with a reviewed per-line allow.
package na

//hdvlint:noalloc
func allowedClosure(x int) int {
	//hdvlint:allow noalloc -- f never escapes, so the closure stays on the stack
	f := func() int { return x }
	return f()
}
