// Package na is a noalloc fixture: a marked function exhibiting every
// allocation-causing construct the analyzer screens for.
package na

import "fmt"

type sink interface{ put(x any) }

type impl struct{}

func (impl) put(x any) {}

//hdvlint:noalloc
func hot(xs []int, name string) string {
	buf := make([]int, 0, 8) // want `make allocates`
	for _, x := range xs {
		buf = append(buf, x) // want `append may grow its backing array`
	}
	s := sink(impl{})   // want `conversion boxes`
	s.put(len(buf))     // want `argument boxes int into interface`
	fmt.Println(name)   // want `fmt.Println allocates`
	return name + "!!!" // want `string concatenation allocates`
}

//hdvlint:noalloc
func spawn(f func()) {
	go f() // want `go statement allocates a goroutine`
}

//hdvlint:noalloc
func capture(x int) func() int {
	return func() int { return x } // want `closure literal allocates`
}

//hdvlint:noalloc
func toBytes(s string) []byte {
	return []byte(s) // want `conversion between string and byte/rune forms`
}
