// Package na (clean fixture): an alloc-free marked kernel, plus an
// unmarked function that may allocate freely.
package na

//hdvlint:noalloc
func dot(a, b []int32) int64 {
	var s int64
	for i := range a {
		s += int64(a[i]) * int64(b[i])
	}
	return s
}

//hdvlint:noalloc
func fill(dst []byte, v byte) {
	for i := range dst {
		dst[i] = v
	}
}

//hdvlint:noalloc
func reslice(buf []int, xs []int) []int {
	out := buf[:0]
	for _, x := range xs {
		out = append(out[:len(out)], x)
	}
	return out
}

// unmarked functions are not patrolled.
func unmarked(n int) []int {
	return make([]int, n)
}
