// Package gr exercises the annotation grammar linting: unknown
// directives, unknown analyzers, missing reasons, misplaced function
// directives, and a stale allow. Expectations live in
// annotations_test.go, not in want comments — several findings land on
// the directive's own line, where a want comment cannot.
package gr

//hdvlint:frobnicate
var a = 1

//hdvlint:allow nosuch -- the analyzer does not exist
var b = 2

//hdvlint:allow determinism
var c = 3

//hdvlint:allow noalloc -- nothing on this line allocates
var d = 4

var e = 5 //hdvlint:noalloc

//hdvlint:locked
func misplacedArgless() {}

var _ = []any{a, b, c, d, e}
