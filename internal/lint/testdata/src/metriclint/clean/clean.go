// Package ml (clean fixture): every statically checkable registration
// spelling the analyzer accepts.
package ml

import "hdvideobench/internal/obs"

func register(r *obs.Registry) {
	r.Counter("fixture_total", "Things counted.", "kind")
	r.Gauge("fixture_depth", "Queue depth.")
	r.Histogram("fixture_seconds", "Latency.", obs.DefTimeBuckets, "endpoint")
	r.Histogram("fixture_bytes", "Sizes.", obs.ExpBuckets(1, 2, 8))
	r.Histogram("fixture_ratio", "Ratios.", []float64{0.1, 0.5, 1})
	r.Histogram("fixture_wait", "Wait time, default buckets.", nil)
	r.CounterFunc("fixture_uptime", "Uptime.", func() float64 { return 0 })
	r.GaugeFunc("fixture_load", "Load.", func() float64 { return 0 })
}
