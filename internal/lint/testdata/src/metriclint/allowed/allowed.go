// Package ml (allowed fixture): a dynamic metric name behind a
// reviewed per-line allow.
package ml

import "hdvideobench/internal/obs"

func dynamic(r *obs.Registry, name string) {
	//hdvlint:allow metriclint -- name comes from a validated fixture table, not user input
	r.Counter(name, "dynamically named series")
}
