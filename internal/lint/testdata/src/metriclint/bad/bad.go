// Package ml is a metriclint fixture: every statically detectable
// registration mistake.
package ml

import "hdvideobench/internal/obs"

func register(r *obs.Registry, dyn string) {
	r.Counter(dyn, "dynamically named")                 // want `metric name must be a compile-time constant`
	r.Counter("bad-name", "dashes are illegal")         // want `does not match the Prometheus grammar`
	r.Gauge("empty_help", "")                           // want `HELP string must not be empty`
	r.Counter("dup_labels", "doubled label", "a", "a")  // want `duplicate label name "a"`
	r.Counter("reserved_label", "le is reserved", "le") // want `label name "le" is reserved`
	r.Counter("bad_label", "bad grammar", "with-dash")  // want `label name "with-dash" does not match`
	labels := []string{"endpoint"}
	r.Counter("spread_labels", "spread", labels...)                 // want `label names must be listed literally`
	r.Histogram("desc_bounds", "descending", []float64{2, 1})       // want `strictly ascending`
	r.Histogram("empty_bounds", "no buckets", []float64{})          // want `at least one bucket bound`
	r.Histogram("exp_bad", "invalid args", obs.ExpBuckets(0, 2, 4)) // want `panics at registration`
	r.Histogram("opaque_bounds", "not static", dynBounds())         // want `not statically checkable`
}

func dynBounds() []float64 { return nil }
