// Package det is a determinism fixture: every construct the analyzer
// forbids in a bitstream-affecting package, with want expectations.
package det

import (
	"math/rand" // want `import of math/rand`
	"time"
)

func shuffle(m map[int]int) int {
	s := 0
	for k := range m { // want `map iteration order varies run to run`
		s += k
	}
	return s + rand.Int()
}

func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want `time.Since reads the wall clock`
}

func race(a, b chan int) (int, int) {
	var x, y int
	for i := 0; i < 2; i++ {
		select { // want `select binds results from 2 channels`
		case x = <-a:
		case y = <-b:
		}
	}
	return x, y
}
