// Package det (allowed fixture): the sanctioned collector-timing
// pattern — wall-clock reads behind explicit per-line allows.
package det

import "time"

func collect(observe func(time.Duration)) {
	//hdvlint:allow determinism -- collector timing fixture; the duration never reaches the bitstream
	t0 := time.Now()
	//hdvlint:allow determinism -- collector timing fixture; the duration never reaches the bitstream
	observe(time.Since(t0))
}
