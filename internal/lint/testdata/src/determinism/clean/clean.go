// Package det (clean fixture): deterministic code the analyzer must
// not flag — slice ranges, single-binding selects, sorted map keys.
package det

import "sort"

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func one(a chan int, done chan struct{}) int {
	select {
	case v := <-a:
		return v
	case <-done:
		return 0
	}
}

func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	//hdvlint:allow determinism -- key order is fixed by the sort below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
