// Package lc (allowed fixture): every sanctioned way to touch a
// guarded field — holding the lock, the caller-locked directive, the
// constructor pattern, and a reviewed per-line allow.
package lc

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// bumpLocked requires c.mu held.
//
//hdvlint:locked mu
func (c *counter) bumpLocked() {
	c.n++
}

func fresh() *counter {
	c := &counter{}
	c.n = 1 // still constructing: c has not escaped
	return c
}

func racyPeek(c *counter) int {
	//hdvlint:allow lockcheck -- deliberately racy read; fixture for the allow grammar
	return c.n
}
