// Package lc (clean fixture): no guard annotations, so lockcheck has
// nothing to enforce — unannotated fields stay unconstrained.
package lc

import "sync"

type plain struct {
	mu sync.Mutex
	n  int
}

func (p *plain) bump() {
	p.n++
}
