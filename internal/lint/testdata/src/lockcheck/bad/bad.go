// Package lc is a lockcheck fixture: guarded fields touched without
// the mutex, and a guard annotation naming a nonexistent mutex.
package lc

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) bump() {
	c.n++ // want `counter.n is guarded by mu`
}

func drain(c *counter) int {
	v := c.n // want `counter.n is guarded by mu`
	return v
}

type broken struct {
	x int // guarded by lock; want `struct broken has no field "lock"`
}
