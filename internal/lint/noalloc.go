package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"hdvideobench/internal/lint/analysis"
)

// NoAlloc statically screens functions marked //hdvlint:noalloc for
// allocation-causing constructs. It is the static complement to
// TestSearchAllocs: the runtime test proves the motion-search hot path
// allocates zero bytes today, the analyzer rejects the constructs that
// would change that — in the searchers and in the per-macroblock codec
// loops the alloc test never reaches.
//
// Flagged inside a marked function: closure literals and goroutine
// launches (closure + stack), append (growth reallocates; appending
// into an explicit reslice like buf[:0] is permitted), make/new,
// map/slice composite literals and &composite (escape), fmt calls,
// string concatenation and string<->[]byte/[]rune conversions, and
// interface boxing (a concrete value passed, assigned or returned as
// an interface allocates when it escapes). The check is intentionally
// conservative and per-function: callees are not followed, so marking
// a function is a statement about its own body.
var NoAlloc = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "forbid allocation-causing constructs in functions marked //hdvlint:noalloc " +
		"(the motion searchers, SWAR kernels and per-macroblock codec loops)",
	Run: runNoAlloc,
}

func runNoAlloc(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "noalloc") {
				continue
			}
			checkNoAlloc(pass, fd)
		}
	}
	return nil
}

func checkNoAlloc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	sig, _ := info.Defs[fd.Name].Type().(*types.Signature)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal allocates (func value + captured variables)")
			return false // the closure's own body is already off the hot path
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine")
			return false
		case *ast.CallExpr:
			checkNoAllocCall(pass, n)
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n.X)) {
				pass.Reportf(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "string concatenation allocates")
			}
			checkNoAllocAssign(pass, n)
		case *ast.ReturnStmt:
			if sig != nil {
				checkNoAllocReturn(pass, n, sig)
			}
		}
		return true
	})
}

func checkNoAllocCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Conversions: T(x) where Fun denotes a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		dst := tv.Type
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			if isString(dst) != isString(src) {
				pass.Reportf(call.Pos(), "conversion between string and byte/rune forms copies and allocates")
				return
			}
			reportBox(pass, call.Args[0].Pos(), dst, src, "conversion")
		}
		return
	}

	// Builtins.
	if id := calleeIdent(call.Fun); id != nil {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if len(call.Args) > 0 {
					if _, resliced := call.Args[0].(*ast.SliceExpr); !resliced {
						pass.Reportf(call.Pos(), "append may grow its backing array; append into an explicit reslice (buf[:0]) or preallocate outside the hot path")
					}
				}
			case "make":
				pass.Reportf(call.Pos(), "make allocates")
			case "new":
				pass.Reportf(call.Pos(), "new allocates")
			}
			return
		}
	}

	// fmt is wholesale interface boxing plus formatting buffers.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates (formatting state and boxed arguments)", fn.Name())
			return
		}
	}

	// Interface boxing through ordinary call arguments.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return // spread call passes the slice through unboxed
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			reportBox(pass, arg.Pos(), pt, info.TypeOf(arg), "argument")
		}
	}
}

func checkNoAllocAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	info := pass.TypesInfo
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		dst := info.TypeOf(as.Lhs[i])
		reportBox(pass, as.Rhs[i].Pos(), dst, info.TypeOf(as.Rhs[i]), "assignment")
	}
}

func checkNoAllocReturn(pass *analysis.Pass, ret *ast.ReturnStmt, sig *types.Signature) {
	res := sig.Results()
	if len(ret.Results) != res.Len() {
		return // naked return or comma-ok mismatch: nothing to box
	}
	for i, e := range ret.Results {
		reportBox(pass, e.Pos(), res.At(i).Type(), pass.TypesInfo.TypeOf(e), "return value")
	}
}

// reportBox flags a concrete value landing in an interface slot.
func reportBox(pass *analysis.Pass, pos token.Pos, dst, src types.Type, what string) {
	if dst == nil || src == nil {
		return
	}
	if !types.IsInterface(dst) || types.IsInterface(src) {
		return
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	pass.Reportf(pos, "%s boxes %s into interface %s (allocates when it escapes)", what, src, dst)
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func calleeIdent(fun ast.Expr) *ast.Ident {
	switch f := fun.(type) {
	case *ast.Ident:
		return f
	case *ast.ParenExpr:
		return calleeIdent(f.X)
	}
	return nil
}
