// Package analysis is a deliberately small, dependency-free mirror of
// the golang.org/x/tools/go/analysis API: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The
// container this repository builds in bakes in no modules beyond the
// standard library, so rather than importing the x/tools framework the
// hdvlint suite carries the ~hundred lines of it that the four
// analyzers actually need. The shapes are kept intentionally
// compatible: an analyzer written against this package ports to the
// real framework by changing one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //hdvlint:allow annotations. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description printed by hdvlint -list:
	// the invariant the analyzer protects and what it flags.
	Doc string

	// Scoped, when non-nil, restricts the analyzer to packages for
	// which it returns true (the determinism analyzer only patrols the
	// bitstream-affecting packages). Nil means every package.
	Scoped func(pkgPath string) bool

	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package into an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The runner owns filtering
	// (//hdvlint:allow) and ordering; analyzers just report.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The analyzer
// name is attached by the runner.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
