package mpeg4

import (
	"testing"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/metrics"
	"hdvideobench/internal/seqgen"
)

func encodeDecode(t *testing.T, cfg codec.Config, seq seqgen.Sequence, n int, encK, decK kernel.Set) ([]*frame.Frame, []*frame.Frame, int) {
	t.Helper()
	cfg.Kernels = encK
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(enc.Header(), decK)
	if err != nil {
		t.Fatal(err)
	}
	gen := seqgen.New(seq, cfg.Width, cfg.Height)
	inputs := gen.Generate(n)

	var decoded []*frame.Frame
	bits := 0
	feed := func(pkts []container.Packet, err error) {
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			bits += 8 * len(p.Payload)
			fs, err := dec.Decode(p)
			if err != nil {
				t.Fatal(err)
			}
			decoded = append(decoded, fs...)
		}
	}
	for _, f := range inputs {
		feed(enc.Encode(f))
	}
	feed(enc.Flush())
	decoded = append(decoded, dec.Flush()...)
	return inputs, decoded, bits
}

func TestRoundTripQuality(t *testing.T) {
	cfg := codec.Default(96, 80)
	inputs, decoded, bits := encodeDecode(t, cfg, seqgen.RushHour, 7, kernel.Scalar, kernel.Scalar)
	if len(decoded) != len(inputs) {
		t.Fatalf("decoded %d frames, want %d", len(decoded), len(inputs))
	}
	for i, f := range decoded {
		if f.PTS != i {
			t.Fatalf("frame %d has PTS %d", i, f.PTS)
		}
		psnr := metrics.PSNRFrames(inputs[i], f)
		if psnr < 26 {
			t.Errorf("frame %d PSNR %.2f dB too low", i, psnr)
		}
	}
	raw := 8 * frame.RawSize(cfg.Width, cfg.Height) * len(inputs)
	if bits >= raw/2 {
		t.Errorf("no compression: %d bits vs %d raw", bits, raw)
	}
}

func TestScalarSWARBitExact(t *testing.T) {
	cfg := codec.Default(96, 80)
	cfgS := cfg
	cfgS.Kernels = kernel.Scalar
	cfgW := cfg
	cfgW.Kernels = kernel.SWAR
	encS, _ := NewEncoder(cfgS)
	encW, _ := NewEncoder(cfgW)
	gen := seqgen.New(seqgen.PedestrianArea, cfg.Width, cfg.Height)

	var pktsS, pktsW []container.Packet
	for i := 0; i < 7; i++ {
		ps, err := encS.Encode(gen.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		pw, err := encW.Encode(gen.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		pktsS = append(pktsS, ps...)
		pktsW = append(pktsW, pw...)
	}
	ps, _ := encS.Flush()
	pw, _ := encW.Flush()
	pktsS = append(pktsS, ps...)
	pktsW = append(pktsW, pw...)

	if len(pktsS) != len(pktsW) {
		t.Fatalf("packet counts differ")
	}
	for i := range pktsS {
		if len(pktsS[i].Payload) != len(pktsW[i].Payload) {
			t.Fatalf("packet %d size differs: %d vs %d", i, len(pktsS[i].Payload), len(pktsW[i].Payload))
		}
		for j := range pktsS[i].Payload {
			if pktsS[i].Payload[j] != pktsW[i].Payload[j] {
				t.Fatalf("packet %d byte %d differs", i, j)
			}
		}
	}
}

func TestDecoderKernelEquivalence(t *testing.T) {
	cfg := codec.Default(96, 80)
	cfg.Kernels = kernel.Scalar
	enc, _ := NewEncoder(cfg)
	gen := seqgen.New(seqgen.BlueSky, cfg.Width, cfg.Height)
	var pkts []container.Packet
	for i := 0; i < 7; i++ {
		ps, _ := enc.Encode(gen.Frame(i))
		pkts = append(pkts, ps...)
	}
	ps, _ := enc.Flush()
	pkts = append(pkts, ps...)

	decS, _ := NewDecoder(enc.Header(), kernel.Scalar)
	decW, _ := NewDecoder(enc.Header(), kernel.SWAR)
	for _, p := range pkts {
		fs, err := decS.Decode(p)
		if err != nil {
			t.Fatal(err)
		}
		fw, err := decW.Decode(p)
		if err != nil {
			t.Fatal(err)
		}
		for k := range fs {
			if metrics.PSNRFrames(fs[k], fw[k]) != 100 {
				t.Fatalf("decoded frame %d differs between kernel sets", fs[k].PTS)
			}
		}
	}
}

func TestGOPStructure(t *testing.T) {
	cfg := codec.Default(96, 80)
	cfg.Kernels = kernel.Scalar
	enc, _ := NewEncoder(cfg)
	gen := seqgen.New(seqgen.RushHour, cfg.Width, cfg.Height)
	var types []container.FrameType
	for i := 0; i < 7; i++ {
		pkts, _ := enc.Encode(gen.Frame(i))
		for _, p := range pkts {
			types = append(types, p.Type)
		}
	}
	pkts, _ := enc.Flush()
	for _, p := range pkts {
		types = append(types, p.Type)
	}
	want := []container.FrameType{'I', 'P', 'B', 'B', 'P', 'B', 'B'}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("coding order %c, want %c", types, want)
		}
	}
}

func TestQualityBitrateTradeoff(t *testing.T) {
	run := func(q int) (float64, int) {
		cfg := codec.Default(96, 80)
		cfg.Q = q
		inputs, decoded, bits := encodeDecode(t, cfg, seqgen.PedestrianArea, 4, kernel.Scalar, kernel.Scalar)
		sum := 0.0
		for i := range decoded {
			sum += metrics.PSNRFrames(inputs[i], decoded[i])
		}
		return sum / float64(len(decoded)), bits
	}
	psnrLo, bitsLo := run(2)
	psnrHi, bitsHi := run(20)
	if psnrLo <= psnrHi {
		t.Errorf("PSNR at Q=2 (%.2f) must exceed Q=20 (%.2f)", psnrLo, psnrHi)
	}
	if bitsLo <= bitsHi {
		t.Errorf("bits at Q=2 (%d) must exceed Q=20 (%d)", bitsLo, bitsHi)
	}
}

func TestDecoderErrors(t *testing.T) {
	hdr := container.Header{Codec: container.CodecMPEG4, Width: 96, Height: 80, FPSNum: 25, FPSDen: 1}
	dec, err := NewDecoder(hdr, kernel.Scalar)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(container.Packet{Type: container.FrameP, Payload: []byte{0x28}}); err == nil {
		t.Error("P without reference must fail")
	}
	if _, err := NewDecoder(container.Header{Codec: container.CodecMPEG2, Width: 96, Height: 80}, kernel.Scalar); err == nil {
		t.Error("wrong codec must be rejected")
	}
	dec2, _ := NewDecoder(hdr, kernel.Scalar)
	if _, err := dec2.Decode(container.Packet{Type: container.FrameI, Payload: []byte{0xFF, 0x01}}); err == nil {
		t.Error("truncated I frame must fail")
	}
}

func TestPSkipOnStaticContent(t *testing.T) {
	// A fully static sequence must produce tiny P frames (skip-dominated).
	cfg := codec.Default(96, 80)
	cfg.Kernels = kernel.Scalar
	cfg.BFrames = 0
	enc, _ := NewEncoder(cfg)
	static := frame.New(96, 80)
	static.Fill(120, 128, 128)
	var sizes []int
	for i := 0; i < 3; i++ {
		pkts, err := enc.Encode(static.Clone())
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			sizes = append(sizes, len(p.Payload))
		}
	}
	if len(sizes) != 3 {
		t.Fatalf("got %d packets", len(sizes))
	}
	// P frames of a static scene: ~1 skip symbol per MB.
	mbCount := (96 / 16) * (80 / 16)
	if sizes[1] > mbCount || sizes[2] > mbCount {
		t.Errorf("static P frames too large: %v (MBs=%d)", sizes, mbCount)
	}
}
