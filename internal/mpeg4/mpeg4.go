// Package mpeg4 implements the HD-VideoBench MPEG-4 ASP-class video codec:
// the role Xvid plays in the paper. On top of the MPEG-2 toolset it adds
// the Advanced Simple Profile tools that give MPEG-4 its compression edge
// and its extra decode cost:
//
//   - quarter-pel motion compensation (6-tap half-pel + bilinear quarter),
//   - 4MV mode (four independent 8×8 vectors per macroblock),
//   - H.263-style quantization with adaptive intra DC scaler,
//   - per-block intra DC prediction.
//
// The bitstream is the HDVB container format (see DESIGN.md §2); encoder
// and decoder form a complete bit-exact pair.
package mpeg4

import (
	"fmt"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
)

// Macroblock modes.
const (
	pInter   = 0
	pIntra   = 1
	pSkip    = 2
	pInter4V = 3

	bSkip  = 0
	bFwd   = 1
	bBwd   = 2
	bBi    = 3
	bIntra = 4
)

const (
	eob8  = 63
	eob64 = 64
)

// dcPredInit is the intra DC predictor reset value in level units
// (1024 / dc_scaler for mid-grey; with dc_scaler 8..46 the level varies, so
// the predictor is kept in the *reconstructed* domain instead: 1024).
const dcPredInit = 1024

type predBuf struct {
	y      [256]byte
	yAlt   [256]byte
	cb, cr [64]byte
	cbAlt  [64]byte
	crAlt  [64]byte
}

// splitQuarter splits a quarter-pel MV component into integer offset and
// quarter fraction (floor semantics).
func splitQuarter(v int) (ipel, frac int) {
	return v >> 2, v & 3
}

// splitHalf splits a half-pel component (chroma path).
func splitHalf(v int) (ipel, frac int) {
	return v >> 1, v & 1
}

// chromaFromLuma converts a quarter-pel luma MV component to the half-pel
// chroma component (truncating toward zero, Xvid-style).
func chromaFromLuma(v int) int { return v / 4 }

func lambdaFor(q int) int {
	if q < 1 {
		return 1
	}
	return q
}

func header(cfg codec.Config, frames int) container.Header {
	var flags uint16
	if cfg.SliceQ() {
		flags |= container.FlagSliceQ
	}
	return container.Header{
		Codec:  container.CodecMPEG4,
		Flags:  flags,
		Width:  cfg.Width,
		Height: cfg.Height,
		FPSNum: cfg.FPSNum,
		FPSDen: cfg.FPSDen,
		Frames: frames,
	}
}

func validateSize(hdr container.Header) error {
	if hdr.Width%16 != 0 || hdr.Height%16 != 0 || hdr.Width <= 0 || hdr.Height <= 0 {
		return fmt.Errorf("mpeg4: invalid dimensions %dx%d", hdr.Width, hdr.Height)
	}
	return nil
}

func clampMVToWindow(ival, pos, size, blk int) int {
	lo := -pos - (codec.RefPad - 8)
	hi := size - pos - blk + (codec.RefPad - 8)
	if ival < lo {
		ival = lo
	}
	if ival > hi {
		ival = hi
	}
	return ival
}
