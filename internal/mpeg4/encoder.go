package mpeg4

import (
	"fmt"

	"hdvideobench/internal/bitstream"
	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/dct"
	"hdvideobench/internal/entropy"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/interp"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/motion"
	"hdvideobench/internal/quant"
	"hdvideobench/internal/swar"
)

// Encoder is the MPEG-4 ASP-class encoder (the paper's Xvid role).
//
// Frames are coded as cfg.Slices independent macroblock-row slices (see
// internal/codec's slice layer): each slice has its own bitstream, DC
// and MV predictors, so slices run concurrently on the SliceRunner while
// the merged payload stays byte-identical for every schedule. Inside
// each slice the macroblock rows are coded by per-row coders (rowEnc)
// that can additionally run on a wavefront runner when cfg.Wavefront is
// set — see sliceEnc.encode.
type Encoder struct {
	cfg    codec.Config
	gop    codec.GOPScheduler
	runner codec.SliceRunner
	wfRun  codec.WavefrontRunner

	prevRef, lastRef *frame.Frame

	dcInit int32

	spans  []codec.SliceSpan
	slices []*sliceEnc

	inCount int
	ptsBase int // chunk offset in the global timeline (codec.PTSRebaser)

	// Rate control (nil/zero when cfg.TargetKbps == 0): frameQ is the
	// current frame's controller-chosen quantizer, sliceQs the per-slice
	// overrides when cfg.SliceQ().
	rc       *codec.RateController
	frameQ   int
	sliceQs  []int
	sliceBuf []int

	// Ladder motion plumbing: tap collects this frame's full-pel forward
	// field for cfg.MotionTap; hint is the cross-rung seed field for the
	// frame being coded (see codec.Config.MotionHints).
	tap  *motion.Field
	hint *motion.Field
}

// sliceEnc codes one slice as a stack of per-row coders. Rows inside a
// slice only couple through the parity MV predictor buffers, whose
// access pattern is exactly the wavefront dependency shape.
type sliceEnc struct {
	e    *Encoder
	bw   *bitstream.Writer // final slice stream: row writers concatenated
	rows []*rowEnc         // per-row coders, index = row within the slice

	// mvBuf is the pair of full-pel MV predictor buffers the rows
	// alternate between: row y of a frame starting at phase p writes
	// mvBuf[(p+y)%2] and reads the row above from mvBuf[(p+y+1)%2].
	// mvPhase carries the alternation across frames, mirroring the
	// serial row swap exactly: B-intra macroblocks leave their mvRow
	// entry unwritten (a deliberate quirk of this encoder), so which
	// physical buffer holds which stale value is part of the bitstream
	// and must match the serial history frame over frame.
	mvBuf   [2][]motion.MV
	mvPhase int
}

// rowEnc carries the state of one macroblock row: the row's bitstream,
// prediction buffers and every predictor that resets at the row
// boundary. One goroutine owns a row for its whole left-to-right walk
// (serially or on the wavefront), so none of this needs synchronization.
type rowEnc struct {
	e  *Encoder
	bw *bitstream.Writer

	pred predBuf

	dcPred  [3]int32
	fwdPred motion.MV // quarter-pel forward predictor within the row
	bwdPred motion.MV
	mvRow   []motion.MV // full-pel MVs for EPZS predictors
	mvAbove []motion.MV

	// Per-slice coding parameters, set by sliceEnc.encode before any
	// macroblock runs: with rate control off they mirror cfg.Q.
	q      int32
	lambda int
	dcInit int32

	epzsPreds [4]motion.MV // scratch for the EPZS candidate list (+1 hint slot)
}

// NewEncoder returns an MPEG-4 encoder for cfg.
func NewEncoder(cfg codec.Config) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("mpeg4: %w", err)
	}
	e := &Encoder{
		cfg:    cfg,
		gop:    codec.GOPScheduler{BFrames: cfg.BFrames, IntraPeriod: cfg.IntraPeriod, SceneCut: cfg.SceneCutIntra},
		dcInit: 1024 / quant.Mpeg4DCScaler(int32(cfg.Q)),
		rc:     codec.NewRateController(cfg),
	}
	e.spans = codec.SliceRows(cfg.MBRows(), cfg.Slices)
	e.slices = make([]*sliceEnc, len(e.spans))
	hint := cfg.Width*cfg.Height/4/len(e.spans) + 64
	rowHint := cfg.Width*cfg.Height/4/cfg.MBRows() + 64
	for i := range e.slices {
		s := &sliceEnc{
			e:    e,
			bw:   bitstream.NewWriter(hint),
			rows: make([]*rowEnc, e.spans[i].Rows),
		}
		s.mvBuf[0] = make([]motion.MV, cfg.MBCols())
		s.mvBuf[1] = make([]motion.MV, cfg.MBCols())
		for r := range s.rows {
			s.rows[r] = &rowEnc{e: e, bw: bitstream.NewWriter(rowHint)}
		}
		e.slices[i] = s
	}
	return e, nil
}

// SetSliceRunner implements codec.SliceScheduler: per-frame slice jobs
// run on r (nil restores the serial default). Output bytes do not depend
// on the runner.
func (e *Encoder) SetSliceRunner(r codec.SliceRunner) { e.runner = r }

// SetWavefrontRunner implements codec.WavefrontScheduler: when
// cfg.Wavefront is set, each slice's macroblock grid runs on r (nil
// restores the serial default). Output bytes depend on neither the
// runner nor cfg.Wavefront.
func (e *Encoder) SetWavefrontRunner(r codec.WavefrontRunner) { e.wfRun = r }

// SetPTSBase implements codec.PTSRebaser: the GOP-parallel pipeline
// announces the chunk's offset in the global display timeline so the
// motion tap/hint callbacks key on global stamps.
func (e *Encoder) SetPTSBase(base int) { e.ptsBase = base }

// Header implements codec.Encoder.
func (e *Encoder) Header() container.Header { return header(e.cfg, 0) }

// Encode implements codec.Encoder.
func (e *Encoder) Encode(f *frame.Frame) ([]container.Packet, error) {
	if f.Width != e.cfg.Width || f.Height != e.cfg.Height {
		return nil, fmt.Errorf("mpeg4: frame is %dx%d, config is %dx%d",
			f.Width, f.Height, e.cfg.Width, e.cfg.Height)
	}
	f.PTS = e.inCount
	e.inCount++
	var pkts []container.Packet
	for _, entry := range e.gop.Push(f) {
		pkts = append(pkts, e.encodeFrame(entry.Frame, entry.Type))
	}
	return pkts, nil
}

// Flush implements codec.Encoder.
func (e *Encoder) Flush() ([]container.Packet, error) {
	var pkts []container.Packet
	for _, entry := range e.gop.Flush() {
		pkts = append(pkts, e.encodeFrame(entry.Frame, entry.Type))
	}
	return pkts, nil
}

func (e *Encoder) encodeFrame(src *frame.Frame, ftype container.FrameType) container.Packet {
	recon := frame.NewPadded(e.cfg.Width, e.cfg.Height, codec.RefPad)
	recon.PTS = src.PTS

	if e.rc != nil {
		e.frameQ = e.rc.FrameQ(ftype)
	} else {
		e.frameQ = e.cfg.Q
	}
	if e.cfg.SliceQ() {
		e.sliceQs = e.rc.SliceQs(e.frameQ, len(e.spans))
	} else {
		e.sliceQs = nil
	}
	if ftype != container.FrameI {
		if e.cfg.MotionTap != nil {
			e.tap = motion.NewField(e.cfg.Width, e.cfg.Height)
		}
		if e.cfg.MotionHints != nil {
			e.hint = e.cfg.MotionHints(src.PTS + e.ptsBase)
		}
	} else {
		e.tap, e.hint = nil, nil
	}

	codec.RunSlices(e.runner, len(e.spans), func(i int) {
		e.slices[i].encode(src, recon, ftype, e.spans[i], i)
	})

	recon.ExtendBorders()
	switch ftype {
	case container.FrameI:
		// Closed GOP: an I frame invalidates earlier references, so a
		// chunk encoder starting here matches the serial stream exactly.
		interp.BuildHalfPel6(recon, e.cfg.Kernels)
		e.prevRef = nil
		e.lastRef = recon
	case container.FrameP:
		interp.BuildHalfPel6(recon, e.cfg.Kernels)
		e.prevRef = e.lastRef
		e.lastRef = recon
	}

	// Payload layout: one quantizer byte, the slice table, then the
	// per-slice bitstreams in row order.
	total := 1 + codec.SliceTableSize(len(e.spans))
	for i, s := range e.slices {
		e.spans[i].Size = len(s.bw.Bytes())
		total += e.spans[i].Size
	}
	payload := make([]byte, 0, total)
	payload = append(payload, byte(e.frameQ))
	payload = codec.AppendSliceTable(payload, e.spans)
	for _, s := range e.slices {
		payload = append(payload, s.bw.Bytes()...)
	}
	if e.rc != nil {
		e.rc.AddFrame(ftype, 8*len(payload))
		if e.sliceQs != nil {
			e.sliceBuf = e.sliceBuf[:0]
			for i := range e.spans {
				e.sliceBuf = append(e.sliceBuf, 8*e.spans[i].Size)
			}
			e.rc.AddSlices(e.sliceBuf)
		}
	}
	if e.tap != nil {
		e.cfg.MotionTap(src.PTS+e.ptsBase, e.tap)
		e.tap = nil
	}
	return container.Packet{Type: ftype, DisplayIndex: src.PTS, Payload: payload}
}

// encode codes one slice's macroblock rows with slice-local state.
//
// Each row is coded by its own rowEnc into its own bitstream; the row
// streams are concatenated bit-exactly afterwards, so the slice bytes
// are those of a single raster-order pass regardless of schedule. With
// cfg.Wavefront set and a runner installed, the rows run concurrently in
// wavefront dependency order — the order the EPZS predictor reads (left,
// above, above-right) require.
func (s *sliceEnc) encode(src, recon *frame.Frame, ftype container.FrameType, span codec.SliceSpan, idx int) {
	cols := s.e.cfg.MBCols()
	q := int32(s.e.frameQ)
	if s.e.sliceQs != nil {
		q = int32(s.e.sliceQs[idx])
	}
	lambda := lambdaFor(int(q))
	dcInit := s.e.dcInit
	if q != int32(s.e.cfg.Q) {
		dcInit = 1024 / quant.Mpeg4DCScaler(q)
	}
	for _, r := range s.rows[:span.Rows] {
		r.q, r.lambda, r.dcInit = q, lambda, dcInit
	}
	tap := s.e.tap
	p := s.mvPhase
	// Row 0 reads a zeroed "row above" (the slice-boundary reset); the
	// write buffers keep their prior contents — B-intra macroblocks read
	// stale entries through them, matching the serial swap history.
	above0 := s.mvBuf[(p+1)%2]
	for i := range above0 {
		above0[i] = motion.MV{}
	}
	var run codec.WavefrontRunner
	if s.e.cfg.Wavefront {
		run = s.e.wfRun
	}
	codec.RunWavefront(run, span.Rows, cols, func(x, y int) bool {
		r := s.rows[y]
		if x == 0 {
			r.bw.Reset()
			r.resetRowState()
			r.mvRow = s.mvBuf[(p+y)%2]
			r.mvAbove = s.mvBuf[(p+y+1)%2]
		}
		mby := span.Row + y
		switch ftype {
		case container.FrameI:
			r.encodeIntraMB(src, recon, x, mby)
		case container.FrameP:
			r.encodePMB(src, recon, x, mby)
		default:
			r.encodeBMB(src, recon, x, mby)
		}
		if tap != nil && ftype != container.FrameI {
			tap.Set(x, mby, r.mvRow[x])
		}
		return true
	})
	s.mvPhase = (p + span.Rows) % 2
	s.bw.Reset()
	if s.e.sliceQs != nil {
		// FlagSliceQ layout: the slice body opens with its quantizer byte.
		s.bw.WriteBits(uint64(q), 8)
	}
	for y := 0; y < span.Rows; y++ {
		s.bw.AppendWriter(s.rows[y].bw)
	}
	s.bw.AlignByte()
}

func (s *rowEnc) resetRowState() {
	s.dcPred = [3]int32{s.dcInit, s.dcInit, s.dcInit}
	s.fwdPred = motion.MV{}
	s.bwdPred = motion.MV{}
}

func (s *rowEnc) resetDCPred() {
	s.dcPred = [3]int32{s.dcInit, s.dcInit, s.dcInit}
}

// --- intra ------------------------------------------------------------------

//hdvlint:noalloc
func (s *rowEnc) encodeIntraMB(src, recon *frame.Frame, mbx, mby int) {
	px, py := mbx*16, mby*16
	q := s.q
	for i := 0; i < 4; i++ {
		off := src.YOrigin + (py+8*(i/2))*src.YStride + px + 8*(i%2)
		roff := recon.YOrigin + (py+8*(i/2))*recon.YStride + px + 8*(i%2)
		s.intraBlock(src.Y, off, src.YStride, recon.Y, roff, recon.YStride, q, 0)
	}
	cx, cy := px/2, py/2
	coff := src.COrigin + cy*src.CStride + cx
	croff := recon.COrigin + cy*recon.CStride + cx
	s.intraBlock(src.Cb, coff, src.CStride, recon.Cb, croff, recon.CStride, q, 1)
	s.intraBlock(src.Cr, coff, src.CStride, recon.Cr, croff, recon.CStride, q, 2)
	s.mvRow[mbx] = motion.MV{}
}

//hdvlint:noalloc
func (s *rowEnc) intraBlock(plane []byte, off, stride int, rec []byte, roff, rstride int, q int32, comp int) {
	var blk [64]int32
	codec.LoadBlock8(&blk, plane, off, stride)
	dct.Forward8(&blk)
	quant.Mpeg4QuantIntra(&blk, q)

	entropy.WriteSE(s.bw, blk[0]-s.dcPred[comp])
	s.dcPred[comp] = blk[0]
	writeRunLevels(s.bw, &blk, 1, eob8)

	quant.Mpeg4DequantIntra(&blk, q)
	dct.Inverse8(&blk)
	codec.Store8Clip(rec, roff, rstride, &blk)
}

func writeRunLevels(bw *bitstream.Writer, blk *[64]int32, start int, eob uint32) {
	run := uint32(0)
	for i := start; i < 64; i++ {
		v := blk[dct.Zigzag8[i]]
		if v == 0 {
			run++
			continue
		}
		entropy.WriteUE(bw, run)
		entropy.WriteSE(bw, v)
		run = 0
	}
	entropy.WriteUE(bw, eob)
}

// --- motion search -----------------------------------------------------------

//hdvlint:noalloc
func (s *rowEnc) sadBlock(src *frame.Frame, px, py, w, h int, pred []byte, pstride int) int {
	off := src.YOrigin + py*src.YStride + px
	if s.e.cfg.Kernels == kernel.SWAR {
		return swar.SADBlock(src.Y[off:], src.YStride, pred, pstride, w, h)
	}
	return codec.SADBlockBytes(src.Y, off, src.YStride, pred, 0, pstride, w, h)
}

//hdvlint:noalloc
func intraCostMB(src *frame.Frame, px, py int) int {
	off := src.YOrigin + py*src.YStride + px
	sum := 0
	for r := 0; r < 16; r++ {
		sum += swar.SumRow(src.Y[off+r*src.YStride:], 16)
	}
	mean := byte(sum / 256)
	cost := 0
	for r := 0; r < 16; r++ {
		row := src.Y[off+r*src.YStride:]
		for c := 0; c < 16; c++ {
			d := int(row[c]) - int(mean)
			if d < 0 {
				d = -d
			}
			cost += d
		}
	}
	return cost + 512
}

// searchQPel runs full-pel EPZS then two-stage sub-pel refinement in the
// quarter-pel domain, filling pred (stride 16) with the winning prediction.
// blockW/blockH select 16×16 or 8×8 partitions; (px,py) addresses the
// block, predQ is the quarter-pel MV predictor.
func (s *rowEnc) searchQPel(src, ref *frame.Frame, px, py, blockW, blockH, mbx int, predQ motion.MV, pred []byte, usePreds bool) (motion.MV, int) {
	var est motion.Estimator
	est.Kern = s.e.cfg.Kernels
	est.Cur = src.Y
	est.CurOff = src.YOrigin + py*src.YStride + px
	est.CurStride = src.YStride
	est.Ref = ref.Y
	est.RefOrigin = ref.YOrigin
	est.RefStride = ref.YStride
	est.PosX, est.PosY = px, py
	est.W, est.H = blockW, blockH
	est.Lambda = s.lambda
	est.Pred = motion.MV{X: predQ.X >> 2, Y: predQ.Y >> 2}
	est.Window(s.e.cfg.SearchRange, s.e.cfg.Width, s.e.cfg.Height, codec.RefPad)

	var preds []motion.MV
	if usePreds {
		preds = s.epzsPreds[:0]
		if mbx > 0 {
			preds = append(preds, s.mvRow[mbx-1])
		}
		preds = append(preds, s.mvAbove[mbx])
		if mbx+1 < len(s.mvAbove) {
			preds = append(preds, s.mvAbove[mbx+1])
		}
		if h := s.e.hint; h != nil {
			// Cross-rung seed from the full-resolution rung, scaled to
			// this geometry (see motion.Field.Sample).
			preds = append(preds, h.Sample(mbx, py/16, s.e.cfg.Width, s.e.cfg.Height))
		}
	}
	exitT := 2 * int(s.q) * blockW * blockH / 16
	if s.e.hint != nil {
		// A trusted cross-rung seed is in the candidate list, so accept a
		// looser match without the diamond walk (EPZS's adaptive-threshold
		// move); the ladder PSNR guard bounds the quality cost.
		exitT *= 4
	}
	res := est.EPZS(preds, exitT)

	// Sub-pel refinement: half-pel stage (step 2) then quarter-pel
	// (step 1), scored against the reference's precomputed 6-tap half
	// planes with early termination — no per-candidate filtering; only
	// the winner is materialized. Same candidate order and strict
	// comparisons as the per-block path, so output bytes are unchanged.
	bestMV := motion.MV{X: res.MV.X * 4, Y: res.MV.Y * 4}
	bestSAD := res.Cost - est.MVCost(int(res.MV.X), int(res.MV.Y))
	for _, step := range []int{2, 1} {
		center := bestMV
		for dy := -step; dy <= step; dy += step {
			for dx := -step; dx <= step; dx += step {
				if dx == 0 && dy == 0 {
					continue
				}
				mv := motion.MV{X: center.X + int16(dx), Y: center.Y + int16(dy)}
				if sad := s.sadQPel(src, ref, px, py, blockW, blockH, mv, bestSAD); sad < bestSAD {
					bestSAD = sad
					bestMV = mv
				}
			}
		}
	}
	s.mcLumaInto(ref, px, py, blockW, blockH, bestMV, pred)
	return bestMV, bestSAD
}

// sadQPel scores one quarter-pel candidate against the precomputed half
// planes, early-terminating once the partial SAD reaches max.
func (s *rowEnc) sadQPel(src, ref *frame.Frame, px, py, w, h int, mv motion.MV, max int) int {
	ix, fx := splitQuarter(int(mv.X))
	iy, fy := splitQuarter(int(mv.Y))
	so := ref.YOrigin + (py+iy)*ref.YStride + px + ix
	co := src.YOrigin + py*src.YStride + px
	return motion.SADQPel(s.e.cfg.Kernels, src.Y[co:], src.YStride, ref, so, w, h, fx, fy, max)
}

// mcLumaInto fills dst (stride 16) with the quarter-pel prediction for mv
// from the reference's half-pel planes (every encoder reference has them —
// BuildHalfPel6 runs when a reconstruction becomes a reference; the
// decoder keeps the per-block QPel path, which is bit-exact with this
// one).
func (s *rowEnc) mcLumaInto(ref *frame.Frame, px, py, w, h int, mv motion.MV, dst []byte) {
	ix, fx := splitQuarter(int(mv.X))
	iy, fy := splitQuarter(int(mv.Y))
	so := ref.YOrigin + (py+iy)*ref.YStride + px + ix
	interp.LumaPlanes(dst, 16, ref.Y, ref.Hpel6, so, ref.YStride, w, h, fx, fy, s.e.cfg.Kernels)
}

// predictChroma fills 8×8 chroma predictions for a 16×16 quarter-pel MV.
func (s *rowEnc) predictChroma(ref *frame.Frame, px, py int, mv motion.MV, cb, cr []byte) {
	cvx := chromaFromLuma(int(mv.X))
	cvy := chromaFromLuma(int(mv.Y))
	ix, fx := splitHalf(cvx)
	iy, fy := splitHalf(cvy)
	cx, cy := px/2, py/2
	so := ref.COrigin + (cy+iy)*ref.CStride + cx + ix
	interp.HalfPel(cb, 8, ref.Cb[so:], ref.CStride, 8, 8, fx, fy, s.e.cfg.Kernels)
	interp.HalfPel(cr, 8, ref.Cr[so:], ref.CStride, 8, 8, fx, fy, s.e.cfg.Kernels)
}

// predictChroma4MV derives chroma from the sum of four 8×8 vectors.
func (s *rowEnc) predictChroma4MV(ref *frame.Frame, px, py int, mvs *[4]motion.MV, cb, cr []byte) {
	sx, sy := 0, 0
	for _, v := range mvs {
		sx += int(v.X)
		sy += int(v.Y)
	}
	avg := motion.MV{X: int16(sx / 4), Y: int16(sy / 4)}
	s.predictChroma(ref, px, py, avg, cb, cr)
}

// --- residual ----------------------------------------------------------------

//hdvlint:noalloc
func (s *rowEnc) codeResidualMB(src, recon *frame.Frame, px, py int) int {
	q := s.q
	var blks [6][64]int32
	cbp := 0
	for i := 0; i < 4; i++ {
		co := src.YOrigin + (py+8*(i/2))*src.YStride + px + 8*(i%2)
		po := 8*(i/2)*16 + 8*(i%2)
		codec.Residual8(&blks[i], src.Y, co, src.YStride, s.pred.y[:], po, 16, s.e.cfg.Kernels)
		dct.Forward8(&blks[i])
		if quant.Mpeg4QuantInter(&blks[i], q) > 0 {
			cbp |= 1 << (5 - i)
		}
	}
	cx, cy := px/2, py/2
	co := src.COrigin + cy*src.CStride + cx
	codec.Residual8(&blks[4], src.Cb, co, src.CStride, s.pred.cb[:], 0, 8, s.e.cfg.Kernels)
	dct.Forward8(&blks[4])
	if quant.Mpeg4QuantInter(&blks[4], q) > 0 {
		cbp |= 2
	}
	codec.Residual8(&blks[5], src.Cr, co, src.CStride, s.pred.cr[:], 0, 8, s.e.cfg.Kernels)
	dct.Forward8(&blks[5])
	if quant.Mpeg4QuantInter(&blks[5], q) > 0 {
		cbp |= 1
	}

	s.bw.WriteBits(uint64(cbp), 6)
	for i := 0; i < 6; i++ {
		if cbp&(1<<(5-i)) != 0 {
			writeRunLevels(s.bw, &blks[i], 0, eob64)
		}
	}

	for i := 0; i < 4; i++ {
		ro := recon.YOrigin + (py+8*(i/2))*recon.YStride + px + 8*(i%2)
		po := 8*(i/2)*16 + 8*(i%2)
		if cbp&(1<<(5-i)) != 0 {
			quant.Mpeg4DequantInter(&blks[i], q)
			dct.Inverse8(&blks[i])
			codec.Add8Clip(recon.Y, ro, recon.YStride, s.pred.y[:], po, 16, &blks[i], s.e.cfg.Kernels)
		} else {
			codec.Copy8(recon.Y, ro, recon.YStride, s.pred.y[:], po, 16)
		}
	}
	cro := recon.COrigin + cy*recon.CStride + cx
	if cbp&2 != 0 {
		quant.Mpeg4DequantInter(&blks[4], q)
		dct.Inverse8(&blks[4])
		codec.Add8Clip(recon.Cb, cro, recon.CStride, s.pred.cb[:], 0, 8, &blks[4], s.e.cfg.Kernels)
	} else {
		codec.Copy8(recon.Cb, cro, recon.CStride, s.pred.cb[:], 0, 8)
	}
	if cbp&1 != 0 {
		quant.Mpeg4DequantInter(&blks[5], q)
		dct.Inverse8(&blks[5])
		codec.Add8Clip(recon.Cr, cro, recon.CStride, s.pred.cr[:], 0, 8, &blks[5], s.e.cfg.Kernels)
	} else {
		codec.Copy8(recon.Cr, cro, recon.CStride, s.pred.cr[:], 0, 8)
	}
	return cbp
}

func (s *rowEnc) residualWouldBeZero(src *frame.Frame, px, py int) bool {
	q := s.q
	var blk [64]int32
	for i := 0; i < 4; i++ {
		co := src.YOrigin + (py+8*(i/2))*src.YStride + px + 8*(i%2)
		po := 8*(i/2)*16 + 8*(i%2)
		codec.Residual8(&blk, src.Y, co, src.YStride, s.pred.y[:], po, 16, s.e.cfg.Kernels)
		dct.Forward8(&blk)
		if quant.Mpeg4QuantInter(&blk, q) > 0 {
			return false
		}
	}
	cx, cy := px/2, py/2
	co := src.COrigin + cy*src.CStride + cx
	codec.Residual8(&blk, src.Cb, co, src.CStride, s.pred.cb[:], 0, 8, s.e.cfg.Kernels)
	dct.Forward8(&blk)
	if quant.Mpeg4QuantInter(&blk, q) > 0 {
		return false
	}
	codec.Residual8(&blk, src.Cr, co, src.CStride, s.pred.cr[:], 0, 8, s.e.cfg.Kernels)
	dct.Forward8(&blk)
	return quant.Mpeg4QuantInter(&blk, q) == 0
}

func (s *rowEnc) copyPredToRecon(recon *frame.Frame, px, py int) {
	for r := 0; r < 16; r++ {
		ro := recon.YOrigin + (py+r)*recon.YStride + px
		copy(recon.Y[ro:ro+16], s.pred.y[r*16:r*16+16])
	}
	cx, cy := px/2, py/2
	for r := 0; r < 8; r++ {
		ro := recon.COrigin + (cy+r)*recon.CStride + cx
		copy(recon.Cb[ro:ro+8], s.pred.cb[r*8:r*8+8])
		copy(recon.Cr[ro:ro+8], s.pred.cr[r*8:r*8+8])
	}
}

// --- P macroblocks -------------------------------------------------------------

func mvBitsQ(mv, pred motion.MV) int {
	return seBits(int(mv.X)-int(pred.X)) + seBits(int(mv.Y)-int(pred.Y))
}

func seBits(v int) int {
	if v < 0 {
		v = -v
	}
	u := 2 * v
	n := 1
	for u > 0 {
		u = (u - 1) >> 1
		n += 2
	}
	return n
}

//hdvlint:noalloc
func (s *rowEnc) encodePMB(src, recon *frame.Frame, mbx, mby int) {
	px, py := mbx*16, mby*16
	ref := s.e.lastRef
	lambda := s.lambda

	// 16×16 hypothesis.
	mv16, sad16 := s.searchQPel(src, ref, px, py, 16, 16, mbx, s.fwdPred, s.pred.y[:], true)
	cost16 := sad16 + lambda*mvBitsQ(mv16, s.fwdPred)

	// 4MV hypothesis: four 8×8 searches seeded from the 16×16 winner.
	var mvs4 [4]motion.MV
	var pred4 [256]byte
	cost4 := lambda * 8 // mode overhead bias
	prev := s.fwdPred
	for i := 0; i < 4; i++ {
		bx := px + 8*(i%2)
		by := py + 8*(i/2)
		var sub [256]byte
		mv, sad := s.searchQPel(src, ref, bx, by, 8, 8, mbx, mv16, sub[:], false)
		mvs4[i] = mv
		cost4 += sad + lambda*mvBitsQ(mv, prev)
		prev = mv
		// Place into the 16×16 prediction layout.
		for r := 0; r < 8; r++ {
			copy(pred4[(8*(i/2)+r)*16+8*(i%2):(8*(i/2)+r)*16+8*(i%2)+8], sub[r*16:r*16+8])
		}
	}

	intraCost := intraCostMB(src, px, py)

	if intraCost < cost16 && intraCost < cost4 {
		entropy.WriteUE(s.bw, pIntra)
		s.encodeIntraMB(src, recon, mbx, mby)
		s.fwdPred = motion.MV{}
		s.mvRow[mbx] = motion.MV{}
		return
	}

	if cost4 < cost16 {
		copy(s.pred.y[:], pred4[:])
		s.predictChroma4MV(ref, px, py, &mvs4, s.pred.cb[:], s.pred.cr[:])
		entropy.WriteUE(s.bw, pInter4V)
		prev = s.fwdPred
		for i := 0; i < 4; i++ {
			entropy.WriteSE(s.bw, int32(mvs4[i].X)-int32(prev.X))
			entropy.WriteSE(s.bw, int32(mvs4[i].Y)-int32(prev.Y))
			prev = mvs4[i]
		}
		s.fwdPred = mvs4[3]
		s.mvRow[mbx] = motion.MV{X: mvs4[3].X >> 2, Y: mvs4[3].Y >> 2}
		s.codeResidualMB(src, recon, px, py)
		s.resetDCPred()
		return
	}

	s.predictChroma(ref, px, py, mv16, s.pred.cb[:], s.pred.cr[:])
	if mv16 == (motion.MV{}) && s.residualWouldBeZero(src, px, py) {
		entropy.WriteUE(s.bw, pSkip)
		s.copyPredToRecon(recon, px, py)
		s.fwdPred = motion.MV{}
		s.mvRow[mbx] = motion.MV{}
		s.resetDCPred()
		return
	}

	entropy.WriteUE(s.bw, pInter)
	entropy.WriteSE(s.bw, int32(mv16.X)-int32(s.fwdPred.X))
	entropy.WriteSE(s.bw, int32(mv16.Y)-int32(s.fwdPred.Y))
	s.fwdPred = mv16
	s.mvRow[mbx] = motion.MV{X: mv16.X >> 2, Y: mv16.Y >> 2}
	s.codeResidualMB(src, recon, px, py)
	s.resetDCPred()
}

// --- B macroblocks -------------------------------------------------------------

//hdvlint:noalloc
func (s *rowEnc) encodeBMB(src, recon *frame.Frame, mbx, mby int) {
	px, py := mbx*16, mby*16
	fwdRef, bwdRef := s.e.prevRef, s.e.lastRef
	lambda := s.lambda

	fwdMV, fwdSAD := s.searchQPel(src, fwdRef, px, py, 16, 16, mbx, s.fwdPred, s.pred.y[:], true)
	bwdMV, bwdSAD := s.searchQPel(src, bwdRef, px, py, 16, 16, mbx, s.bwdPred, s.pred.yAlt[:], true)

	var bi [256]byte
	copy(bi[:], s.pred.y[:])
	interp.Avg(bi[:], 16, s.pred.yAlt[:], 16, 16, 16, s.e.cfg.Kernels)
	biSAD := s.sadBlock(src, px, py, 16, 16, bi[:], 16) + 2*lambda

	intraCost := intraCostMB(src, px, py)

	mode := bFwd
	best := fwdSAD
	if bwdSAD < best {
		mode, best = bBwd, bwdSAD
	}
	if biSAD < best {
		mode, best = bBi, biSAD
	}
	if intraCost < best {
		entropy.WriteUE(s.bw, bIntra)
		s.encodeIntraMB(src, recon, mbx, mby)
		s.fwdPred = motion.MV{}
		s.bwdPred = motion.MV{}
		return
	}

	switch mode {
	case bFwd:
		s.predictChroma(fwdRef, px, py, fwdMV, s.pred.cb[:], s.pred.cr[:])
	case bBwd:
		copy(s.pred.y[:], s.pred.yAlt[:])
		s.predictChroma(bwdRef, px, py, bwdMV, s.pred.cb[:], s.pred.cr[:])
	case bBi:
		copy(s.pred.y[:], bi[:])
		s.predictChroma(fwdRef, px, py, fwdMV, s.pred.cb[:], s.pred.cr[:])
		s.predictChroma(bwdRef, px, py, bwdMV, s.pred.cbAlt[:], s.pred.crAlt[:])
		interp.Avg(s.pred.cb[:], 8, s.pred.cbAlt[:], 8, 8, 8, s.e.cfg.Kernels)
		interp.Avg(s.pred.cr[:], 8, s.pred.crAlt[:], 8, 8, 8, s.e.cfg.Kernels)
	}

	if mode == bFwd && fwdMV == s.fwdPred && s.residualWouldBeZero(src, px, py) {
		entropy.WriteUE(s.bw, bSkip)
		s.copyPredToRecon(recon, px, py)
		s.mvRow[mbx] = motion.MV{X: fwdMV.X >> 2, Y: fwdMV.Y >> 2}
		s.resetDCPred()
		return
	}

	entropy.WriteUE(s.bw, uint32(mode))
	if mode == bFwd || mode == bBi {
		entropy.WriteSE(s.bw, int32(fwdMV.X)-int32(s.fwdPred.X))
		entropy.WriteSE(s.bw, int32(fwdMV.Y)-int32(s.fwdPred.Y))
		s.fwdPred = fwdMV
	}
	if mode == bBwd || mode == bBi {
		entropy.WriteSE(s.bw, int32(bwdMV.X)-int32(s.bwdPred.X))
		entropy.WriteSE(s.bw, int32(bwdMV.Y)-int32(s.bwdPred.Y))
		s.bwdPred = bwdMV
	}
	switch mode {
	case bFwd, bBi:
		s.mvRow[mbx] = motion.MV{X: fwdMV.X >> 2, Y: fwdMV.Y >> 2}
	default:
		s.mvRow[mbx] = motion.MV{X: bwdMV.X >> 2, Y: bwdMV.Y >> 2}
	}
	s.codeResidualMB(src, recon, px, py)
	s.resetDCPred()
}
