// Quickstart: encode one benchmark sequence with the H.264-class codec,
// decode it back, and print the Table V metrics (PSNR and bitrate).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hdvideobench"
)

func main() {
	const w, h, frames = 320, 240, 10

	// The four paper sequences are generated procedurally and
	// deterministically — same frames on every run.
	gen := hdvideobench.NewSequence(hdvideobench.RushHour, w, h)
	inputs := gen.Generate(frames)

	// The paper's coding options are the defaults: constant quantizer Q=5
	// (H.264 QP 26 via Eq. 1), I-P-B-B GOP, hexagon motion search.
	enc, err := hdvideobench.NewEncoder(hdvideobench.H264, hdvideobench.EncoderOptions{
		Width: w, Height: h,
	})
	if err != nil {
		log.Fatal(err)
	}
	pkts, err := hdvideobench.EncodeFrames(enc, inputs)
	if err != nil {
		log.Fatal(err)
	}

	dec, err := hdvideobench.NewDecoder(enc.Header(), false)
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := hdvideobench.DecodePackets(dec, pkts)
	if err != nil {
		log.Fatal(err)
	}

	bits := 0
	for _, p := range pkts {
		bits += 8 * len(p.Payload)
	}
	psnr := 0.0
	for i := range decoded {
		psnr += hdvideobench.PSNR(inputs[i], decoded[i])
	}
	fmt.Printf("H.264, %d frames of rush_hour at %dx%d\n", frames, w, h)
	fmt.Printf("  coded frame types:")
	for _, p := range pkts {
		fmt.Printf(" %c", p.Type)
	}
	fmt.Println()
	fmt.Printf("  average luma PSNR: %.2f dB\n", psnr/float64(frames))
	fmt.Printf("  bitrate:           %.1f kbit/s at 25 fps\n",
		float64(bits)*25/float64(frames)/1000)
}
