// Parallel encoding: the paper's future-work section ("we are working on
// extending HD-VideoBench by including parallel versions of the video
// Codecs ... for emerging chip multiprocessing architectures").
//
// GOP-chunk parallelism now lives in the library: with IntraPeriod > 0
// the stream is a series of closed GOPs, and EncodeFramesParallel /
// DecodePacketsParallel spread them over Workers goroutines with an
// ordered merge, so the output is byte-identical to the serial path at
// any worker count. This example encodes the same sequence serially and
// in parallel, verifies the two streams match byte for byte, and reports
// the wall-clock speed-up.
//
//	go run ./examples/parallel
package main

import (
	"bytes"
	"fmt"
	"log"
	"runtime"
	"time"

	"hdvideobench"
)

const (
	width, height = 320, 240
	totalFrames   = 24
	gop           = 6 // closed-GOP length = chunk size
)

func main() {
	inputs := hdvideobench.NewSequence(hdvideobench.PedestrianArea, width, height).
		Generate(totalFrames)
	opts := hdvideobench.EncoderOptions{
		Width: width, Height: height, IntraPeriod: gop,
	}

	serialStart := time.Now()
	opts.Workers = 1
	serialPkts, _, err := hdvideobench.EncodeFramesParallel(hdvideobench.H264, opts, inputs)
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(serialStart)

	workers := runtime.NumCPU()
	parStart := time.Now()
	opts.Workers = workers
	parPkts, hdr, err := hdvideobench.EncodeFramesParallel(hdvideobench.H264, opts, inputs)
	if err != nil {
		log.Fatal(err)
	}
	parTime := time.Since(parStart)

	if !streamsEqual(serialPkts, parPkts) {
		log.Fatal("parallel stream differs from serial stream")
	}
	if _, err := hdvideobench.DecodePacketsParallel(hdr, false, workers, parPkts); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GOP-parallel H.264 encoding, %d frames at %dx%d, GOP %d, %d workers\n",
		totalFrames, width, height, gop, workers)
	fmt.Printf("  serial:   %8v  (%d packets, %d bytes)\n",
		serialTime, len(serialPkts), size(serialPkts))
	fmt.Printf("  parallel: %8v  (byte-identical stream)\n", parTime)
	fmt.Printf("  speed-up: %.2fx\n", serialTime.Seconds()/parTime.Seconds())
}

func streamsEqual(a, b []hdvideobench.Packet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].DisplayIndex != b[i].DisplayIndex ||
			!bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}

func size(pkts []hdvideobench.Packet) int {
	n := 0
	for _, p := range pkts {
		n += len(p.Payload)
	}
	return n
}
