// Parallel encoding: the paper's future-work section ("we are working on
// extending HD-VideoBench by including parallel versions of the video
// Codecs ... for emerging chip multiprocessing architectures").
//
// This example implements GOP-chunk parallelism: the input sequence is
// split into independent closed chunks, each encoded by its own encoder
// instance on its own goroutine (every chunk starts with an I frame, so
// chunks have no coding dependencies), and the streams are concatenated in
// order. It reports serial vs parallel wall-clock and the resulting
// speed-up.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"hdvideobench"
)

const (
	width, height = 320, 240
	totalFrames   = 24
	chunkFrames   = 6
)

func main() {
	inputs := hdvideobench.NewSequence(hdvideobench.PedestrianArea, width, height).
		Generate(totalFrames)

	serialStart := time.Now()
	serialPkts := encodeChunk(inputs)
	serialTime := time.Since(serialStart)

	workers := runtime.GOMAXPROCS(0)
	parStart := time.Now()
	nChunks := (totalFrames + chunkFrames - 1) / chunkFrames
	chunkPkts := make([][]hdvideobench.Packet, nChunks)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for ci := 0; ci < nChunks; ci++ {
		lo := ci * chunkFrames
		hi := min(lo+chunkFrames, totalFrames)
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			chunkPkts[ci] = encodeChunk(inputs[lo:hi])
		}(ci, lo, hi)
	}
	wg.Wait()
	parTime := time.Since(parStart)

	var parallel []hdvideobench.Packet
	for _, ps := range chunkPkts {
		parallel = append(parallel, ps...)
	}

	fmt.Printf("GOP-chunk parallel H.264 encoding, %d frames at %dx%d, %d workers\n",
		totalFrames, width, height, workers)
	fmt.Printf("  serial:   %8v  (%d packets, %d bytes)\n",
		serialTime, len(serialPkts), size(serialPkts))
	fmt.Printf("  parallel: %8v  (%d packets, %d bytes, %d chunks)\n",
		parTime, len(parallel), size(parallel), nChunks)
	fmt.Printf("  speed-up: %.2fx\n", serialTime.Seconds()/parTime.Seconds())
	fmt.Println("\n(chunk boundaries add I frames, so the parallel stream is slightly larger —")
	fmt.Println(" the same trade x264's threaded modes make)")
}

func encodeChunk(frames []*hdvideobench.Frame) []hdvideobench.Packet {
	enc, err := hdvideobench.NewEncoder(hdvideobench.H264, hdvideobench.EncoderOptions{
		Width: width, Height: height,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Each chunk owns a disjoint sub-slice of the input, so encoders never
	// touch the same frame concurrently (Encode stamps display indices).
	pkts, err := hdvideobench.EncodeFrames(enc, frames)
	if err != nil {
		log.Fatal(err)
	}
	return pkts
}

func size(pkts []hdvideobench.Packet) int {
	n := 0
	for _, p := range pkts {
		n += len(p.Payload)
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
