// RD compare: run the three codecs over the four benchmark sequences at one
// resolution and print a miniature of the paper's Table V together with the
// §VI compression-gain summary.
//
//	go run ./examples/rdcompare
package main

import (
	"fmt"
	"log"

	"hdvideobench"
)

func main() {
	opts := hdvideobench.SuiteOptions{
		Frames: 8,
		Resolutions: []hdvideobench.Resolution{
			{Name: "cif+", Width: 352, Height: 288},
		},
	}
	results, err := hdvideobench.RunTableV(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(hdvideobench.FormatTableV(results))
	fmt.Println()
	fmt.Print(hdvideobench.Gains(results))
	fmt.Println("\n(the paper's §VI reports MPEG-4 saving 34-39% and H.264 48-52% vs MPEG-2)")
}
