// Transcode: decode an MPEG-2 stream and re-encode it with the H.264-class
// codec — the desktop transcoding workload (MEncoder-style) the paper's
// introduction motivates. Prints the size of both streams and the quality
// of each generation.
//
//	go run ./examples/transcode
package main

import (
	"fmt"
	"log"

	"hdvideobench"
)

func main() {
	const w, h, frames = 320, 240, 10

	inputs := hdvideobench.NewSequence(hdvideobench.PedestrianArea, w, h).Generate(frames)

	// First generation: MPEG-2 (a DVD-era source).
	m2enc, err := hdvideobench.NewEncoder(hdvideobench.MPEG2, hdvideobench.EncoderOptions{
		Width: w, Height: h,
	})
	check(err)
	m2pkts, err := hdvideobench.EncodeFrames(m2enc, inputs)
	check(err)

	m2dec, err := hdvideobench.NewDecoder(m2enc.Header(), false)
	check(err)
	m2frames, err := hdvideobench.DecodePackets(m2dec, m2pkts)
	check(err)

	// Second generation: re-encode the decoded MPEG-2 frames as H.264.
	hEnc, err := hdvideobench.NewEncoder(hdvideobench.H264, hdvideobench.EncoderOptions{
		Width: w, Height: h,
	})
	check(err)
	hPkts, err := hdvideobench.EncodeFrames(hEnc, m2frames)
	check(err)

	hDec, err := hdvideobench.NewDecoder(hEnc.Header(), false)
	check(err)
	hFrames, err := hdvideobench.DecodePackets(hDec, hPkts)
	check(err)

	size := func(pkts []hdvideobench.Packet) int {
		n := 0
		for _, p := range pkts {
			n += len(p.Payload)
		}
		return n
	}
	psnrVs := func(ref, dist []*hdvideobench.Frame) float64 {
		s := 0.0
		for i := range dist {
			s += hdvideobench.PSNR(ref[i], dist[i])
		}
		return s / float64(len(dist))
	}

	fmt.Printf("transcode pedestrian_area %dx%d, %d frames\n", w, h, frames)
	fmt.Printf("  MPEG-2 stream: %6d bytes, %.2f dB vs source\n",
		size(m2pkts), psnrVs(inputs, m2frames))
	fmt.Printf("  H.264 stream:  %6d bytes (%.1f%% of MPEG-2), %.2f dB vs source\n",
		size(hPkts), 100*float64(size(hPkts))/float64(size(m2pkts)),
		psnrVs(inputs, hFrames))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
