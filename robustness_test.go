package hdvideobench

import (
	"math/rand"
	"testing"

	"hdvideobench/internal/container"
)

// TestDecodersRejectGarbage feeds random payloads to all three decoders:
// they must return errors (or tolerate the input) without panicking — the
// property that lets the benchmark harness run untrusted streams.
func TestDecodersRejectGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	headers := map[Codec]StreamHeader{
		MPEG2: {Codec: container.CodecMPEG2, Width: 96, Height: 80, FPSNum: 25, FPSDen: 1},
		MPEG4: {Codec: container.CodecMPEG4, Width: 96, Height: 80, FPSNum: 25, FPSDen: 1},
		H264:  {Codec: container.CodecH264, Width: 96, Height: 80, FPSNum: 25, FPSDen: 1, Flags: 4 << 1},
	}
	for c, hdr := range headers {
		for trial := 0; trial < 50; trial++ {
			payload := make([]byte, rng.Intn(300))
			rng.Read(payload)
			if c == H264 && len(payload) > 0 {
				payload[0] = byte(rng.Intn(52)) // plausible QP so parsing proceeds
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%v: panic on garbage payload (trial %d): %v", c, trial, r)
					}
				}()
				dec, err := NewDecoder(hdr, trial%2 == 0)
				if err != nil {
					t.Fatal(err)
				}
				types := []container.FrameType{FrameI, FrameP, FrameB}
				_, _ = dec.Decode(Packet{
					Type:         types[trial%3],
					DisplayIndex: 0,
					Payload:      payload,
				})
			}()
		}
	}
}

// TestTruncatedStreams truncates valid streams at every byte boundary of
// the first packet: decoders must error or succeed, never panic.
func TestTruncatedStreams(t *testing.T) {
	for _, c := range []Codec{MPEG2, MPEG4, H264} {
		gen := NewSequence(BlueSky, 96, 80)
		enc, err := NewEncoder(c, EncoderOptions{Width: 96, Height: 80})
		if err != nil {
			t.Fatal(err)
		}
		pkts, err := EncodeFrames(enc, gen.Generate(2))
		if err != nil {
			t.Fatal(err)
		}
		first := pkts[0]
		for cut := 0; cut < len(first.Payload); cut += 7 {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%v: panic at cut %d: %v", c, cut, r)
					}
				}()
				dec, err := NewDecoder(enc.Header(), false)
				if err != nil {
					t.Fatal(err)
				}
				_, _ = dec.Decode(Packet{
					Type:         first.Type,
					DisplayIndex: first.DisplayIndex,
					Payload:      first.Payload[:cut],
				})
			}()
		}
	}
}

// TestBitFlippedStreams flips single bits in a valid I frame: the decoder
// must never panic (it may decode to different content or error).
func TestBitFlippedStreams(t *testing.T) {
	for _, c := range []Codec{MPEG2, MPEG4, H264} {
		gen := NewSequence(RushHour, 96, 80)
		enc, err := NewEncoder(c, EncoderOptions{Width: 96, Height: 80})
		if err != nil {
			t.Fatal(err)
		}
		pkts, err := EncodeFrames(enc, gen.Generate(1))
		if err != nil {
			t.Fatal(err)
		}
		first := pkts[0]
		step := len(first.Payload)/24 + 1
		for pos := 0; pos < len(first.Payload); pos += step {
			corrupted := append([]byte(nil), first.Payload...)
			corrupted[pos] ^= 0x40
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%v: panic with bit flip at byte %d: %v", c, pos, r)
					}
				}()
				dec, err := NewDecoder(enc.Header(), false)
				if err != nil {
					t.Fatal(err)
				}
				_, _ = dec.Decode(Packet{Type: first.Type, Payload: corrupted})
			}()
		}
	}
}
